"""Machine integration: prologue, scheduling traffic, result assembly."""

from __future__ import annotations

from typing import Any, Dict, Generator, List

import pytest

from repro.sim import (BroadcastSyncFabric, Compute, Machine, MachineConfig,
                       MemWrite, SCHED_COUNTER, SharedMemory,
                       SyncWrite)


class ToyWorkload:
    """N independent processes, each computing then writing one word."""

    def __init__(self, n: int, cost: int = 10, with_prologue: bool = False):
        self.iterations = list(range(1, n + 1))
        self.cost = cost
        self.with_prologue = with_prologue
        self._fabric = None

    def build_fabric(self, memory: SharedMemory) -> BroadcastSyncFabric:
        self._fabric = BroadcastSyncFabric()
        self._fabric.alloc(1, init=0)
        return self._fabric

    def make_process(self, iteration: int) -> Generator:
        yield Compute(self.cost)
        yield MemWrite(("out", iteration), iteration * 2)

    def prologue(self) -> List[Generator]:
        if not self.with_prologue:
            return []

        def setup():
            yield Compute(25)
            yield SyncWrite(0, 1)

        return [setup()]

    def initial_memory(self) -> Dict[Any, Any]:
        return {("seed", 0): 42}

    @property
    def sync_vars(self) -> int:
        return 1


def test_parallel_speedup_of_independent_work():
    serial = Machine(MachineConfig(processors=1)).run(ToyWorkload(16))
    parallel = Machine(MachineConfig(processors=8)).run(ToyWorkload(16))
    assert parallel.makespan < serial.makespan
    assert parallel.makespan <= serial.makespan / 4  # near-linear


def test_all_iterations_executed_once():
    result = Machine(MachineConfig(processors=3)).run(ToyWorkload(10))
    for iteration in range(1, 11):
        assert result.final_memory[("out", iteration)] == iteration * 2


def test_prologue_runs_before_loop_and_counts_as_init():
    result = Machine(MachineConfig(processors=4)).run(
        ToyWorkload(4, with_prologue=True))
    assert result.init_cycles >= 25
    assert result.makespan > result.init_cycles


def test_no_prologue_zero_init():
    result = Machine(MachineConfig(processors=4)).run(ToyWorkload(4))
    assert result.init_cycles == 0


def test_self_scheduling_charges_grab_traffic():
    self_sched = Machine(MachineConfig(processors=2,
                                       schedule="self")).run(ToyWorkload(10))
    static = Machine(MachineConfig(processors=2,
                                   schedule="block")).run(ToyWorkload(10))
    # self-scheduling reads the shared counter once per grab attempt
    grabs = [r for r in self_sched.trace if r.addr == SCHED_COUNTER]
    assert len(grabs) >= 10
    static_grabs = [r for r in static.trace if r.addr == SCHED_COUNTER]
    assert static_grabs == []


def test_initial_memory_preloaded():
    result = Machine(MachineConfig(processors=1)).run(ToyWorkload(2))
    assert result.final_memory[("seed", 0)] == 42


def test_per_processor_stats_reported():
    result = Machine(MachineConfig(processors=3)).run(ToyWorkload(9))
    assert len(result.processors) == 3
    assert result.total_busy == 9 * 10
    assert 0 < result.utilization <= 1


def test_trace_can_be_disabled():
    result = Machine(MachineConfig(processors=2,
                                   record_trace=False)).run(ToyWorkload(4))
    assert result.trace == []
    # functional result still correct
    assert result.final_memory[("out", 3)] == 6


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(processors=0)
    with pytest.raises(ValueError):
        MachineConfig(schedule="lottery")


def test_sync_storage_and_vars_in_result():
    result = Machine(MachineConfig(processors=2)).run(ToyWorkload(4))
    assert result.sync_vars == 1
    assert result.sync_storage_words == 1


def test_events_surface_in_extra():
    result = Machine(MachineConfig(processors=2)).run(ToyWorkload(4))
    assert "events" in result.extra
