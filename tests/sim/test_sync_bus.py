"""Fabric semantics: broadcast bus, coverage, memory-backed variables."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.sim import (BroadcastSyncFabric, Engine, MemoryConfig,
                       MemorySyncFabric, SharedMemory, SyncRead, SyncWrite,
                       WaitUntil)


def drive(fabric, procs, memory=None):
    memory = memory or SharedMemory()
    engine = Engine(memory, fabric)
    for index, proc in enumerate(procs):
        engine.spawn(proc, name=f"p{index}")
    makespan = engine.run()
    return engine, makespan


# ----------------------------------------------------------------------
# broadcast fabric
# ----------------------------------------------------------------------

def test_broadcast_write_becomes_visible_later():
    fabric = BroadcastSyncFabric(issue_cost=1, bus_service=2, propagation=1)
    var = fabric.alloc(1, init=0)[0]
    times = {}

    def writer():
        yield SyncWrite(var, 7)
        times["writer_free"] = engine.now

    def reader():
        yield WaitUntil(var, lambda v: v == 7)
        times["visible"] = engine.now

    memory = SharedMemory()
    engine = Engine(memory, fabric)
    engine.spawn(writer(), name="w")
    engine.spawn(reader(), name="r")
    engine.run()
    # writer proceeds after issue (1 cycle); visibility after bus + prop
    assert times["writer_free"] == 1
    assert times["visible"] >= 1 + 2 + 1


def test_broadcast_writes_serialize_on_the_bus():
    fabric = BroadcastSyncFabric(issue_cost=1, bus_service=5, propagation=0)
    a, b = fabric.alloc(2, init=0)
    visible = {}

    def writers():
        yield SyncWrite(a, 1)
        yield SyncWrite(b, 1)

    def watcher(var, key):
        yield WaitUntil(var, lambda v: v == 1)
        visible[key] = engine.now

    memory = SharedMemory()
    engine = Engine(memory, fabric)
    engine.spawn(writers(), name="w")
    engine.spawn(watcher(a, "a"), name="wa")
    engine.spawn(watcher(b, "b"), name="wb")
    engine.run()
    assert visible["b"] >= visible["a"] + 5  # second broadcast queues


def test_local_image_read_is_one_cycle_and_free():
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=3)[0]
    got = []

    def reader():
        value = yield SyncRead(var)
        got.append(value)

    _engine, makespan = drive(fabric, [reader()])
    assert got == [3]
    assert makespan == 1
    assert fabric.transactions == 0  # reads never hit the bus


def test_write_coverage_merges_queued_writes():
    fabric = BroadcastSyncFabric(issue_cost=0, bus_service=50,
                                 propagation=0, coverage=True)
    var = fabric.alloc(1, init=0)[0]

    def writer():
        yield SyncWrite(var, 1, coverable=True)
        yield SyncWrite(var, 2, coverable=True)  # covers the queued 1? no:
        # the first write is already granted at issue (bus was free); the
        # *third* write arrives while the second is still queued.
        yield SyncWrite(var, 3, coverable=True)

    drive(fabric, [writer()])
    assert fabric.covered_writes == 1
    assert fabric.transactions == 2
    assert fabric.value(var) == 3


def test_coverage_disabled_broadcasts_everything():
    fabric = BroadcastSyncFabric(issue_cost=0, bus_service=50,
                                 propagation=0, coverage=False)
    var = fabric.alloc(1, init=0)[0]

    def writer():
        for value in (1, 2, 3):
            yield SyncWrite(var, value, coverable=True)

    drive(fabric, [writer()])
    assert fabric.covered_writes == 0
    assert fabric.transactions == 3
    assert fabric.value(var) == 3


def test_non_coverable_write_never_covered():
    fabric = BroadcastSyncFabric(issue_cost=0, bus_service=50,
                                 propagation=0, coverage=True)
    var = fabric.alloc(1, init=0)[0]

    def writer():
        yield SyncWrite(var, 1, coverable=True)
        yield SyncWrite(var, 2, coverable=True)
        yield SyncWrite(var, 3, coverable=False)  # e.g. release_PC

    drive(fabric, [writer()])
    # the 2 covers nothing (1 already granted); the 3 must broadcast
    assert fabric.transactions == 3 - fabric.covered_writes
    assert fabric.value(var) == 3


@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                max_size=20),
       st.booleans())
def test_coverage_final_value_always_last_write(values, coverage):
    """Coverage is transparent: the committed end state is the last
    write's value regardless of how many broadcasts were saved."""
    fabric = BroadcastSyncFabric(issue_cost=0, bus_service=7,
                                 propagation=2, coverage=coverage)
    var = fabric.alloc(1, init=0)[0]

    def writer():
        for value in values:
            yield SyncWrite(var, value, coverable=True)

    drive(fabric, [writer()])
    assert fabric.value(var) == values[-1]
    assert fabric.transactions + fabric.covered_writes == len(values)


# ----------------------------------------------------------------------
# memory-backed fabric
# ----------------------------------------------------------------------

def test_memory_fabric_charges_memory_traffic():
    memory = SharedMemory(MemoryConfig(latency=3))
    fabric = MemorySyncFabric(memory)
    var = fabric.alloc(1, init=0)[0]

    def proc():
        yield SyncWrite(var, 1)
        value = yield SyncRead(var)
        assert value == 1

    drive(fabric, [proc()], memory=memory)
    assert fabric.transactions == 2
    assert memory.transactions == 0  # sync space tracked by the fabric
    assert memory.max_module_traffic() >= 2  # but occupies the modules


def test_memory_fabric_is_polling():
    assert MemorySyncFabric(SharedMemory()).wait_mode == "poll"
    assert BroadcastSyncFabric().wait_mode == "event"


def test_alloc_assigns_distinct_vars_and_counts_storage():
    fabric = BroadcastSyncFabric()
    first = fabric.alloc(3, init=0)
    second = fabric.alloc(2, init=(0, 0), words_per_var=2)
    assert list(first) == [0, 1, 2]
    assert list(second) == [3, 4]
    assert fabric.storage_words == 3 + 4
    assert fabric.value(4) == (0, 0)
