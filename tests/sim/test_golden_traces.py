"""Golden-trace byte-identity pins for the engine hot-path rewrite.

The engine's correctness gate is *byte-identical* ``RunResult``s in
full-metrics mode: every field of the result -- per-access trace, sync
trace, per-task stats, final memory, the event stream -- is fingerprinted
(canonical JSON -> sha256) and compared against ``golden_traces.json``,
which was generated from the pre-rewrite tuple-heap engine.  Any change
to event ordering, tie-breaking, spin accounting or trace contents shows
up as a fingerprint mismatch.

The grid covers all four schemes x {fig2.1, the fig3.1 grid's loop at a
fig3.1 size, the fig3.2 grid's delayed loop} plus the butterfly barriers
(Example 4), so both fabrics, both wait modes, prologues and the posted
write path are all pinned.

Regenerate (only when a change is *meant* to alter results)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/sim/test_golden_traces.py
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Tuple

import pytest

from repro.lab.apps import build_app
from repro.barriers import (BrooksButterflyBarrier, PCButterflyBarrier,
                            PhasedWorkload)
from repro.schemes import RunConfig, make_scheme, scheme_names
from repro.sim.machine import Machine, MachineConfig
from repro.sim.metrics import RunResult

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_traces.json"

#: loop workloads: case stem -> (app, params, processors, schedule)
LOOPS: Dict[str, Tuple[str, Dict[str, Any], int, str]] = {
    "fig2.1": ("fig2.1", {"n": 16}, 4, "self"),
    "fig3.1": ("fig2.1", {"n": 50}, 8, "self"),
    "fig3.2": ("fig2.1-delay",
               {"n": 48, "slow_iteration": 16, "slow_cost": 400}, 8, "self"),
}

BARRIERS = {
    "butterfly-brooks": BrooksButterflyBarrier,
    "butterfly-pc": PCButterflyBarrier,
}


def _canon(value: Any) -> Any:
    """JSON-able canonical form (tuples->lists, tuple dict keys kept)."""
    if isinstance(value, dict):
        return sorted(([_canon(k), _canon(v)] for k, v in value.items()),
                      key=repr)
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canon(dataclasses.asdict(value))
    return value


def fingerprint(result: RunResult) -> str:
    """sha256 over every byte of a run's observable result."""
    payload = {
        "makespan": result.makespan,
        "processors": [_canon(stats) for stats in result.processors],
        "memory_transactions": result.memory_transactions,
        "memory_hotspot": result.memory_hotspot,
        "sync_transactions": result.sync_transactions,
        "covered_writes": result.covered_writes,
        "sync_vars": result.sync_vars,
        "sync_storage_words": result.sync_storage_words,
        "init_cycles": result.init_cycles,
        "trace": [_canon(record) for record in result.trace],
        "sync_trace": _canon(result.sync_trace),
        "final_memory": _canon(result.final_memory),
        "extra": _canon(result.extra),
        "summary": _canon(result.summary()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_loop_case(scheme_name: str, stem: str) -> RunResult:
    app, params, processors, schedule = LOOPS[stem]
    loop = build_app(app, dict(params))
    machine = Machine(MachineConfig(processors=processors,
                                    schedule=schedule, record_trace=True))
    return make_scheme(scheme_name).run(
        loop, config=RunConfig(machine=machine, validate=False))


def _run_barrier_case(name: str) -> RunResult:
    barrier = BARRIERS[name](8)
    workload = PhasedWorkload(
        barrier, n_phases=3,
        work=lambda pid, phase: (pid * 7 + phase * 13) % 23 + 5)
    machine = Machine(MachineConfig(processors=8, schedule="block",
                                    record_trace=True))
    return machine.run(workload)


def _all_cases():
    for stem in LOOPS:
        for scheme_name in scheme_names():
            yield f"{stem}/{scheme_name}", (
                lambda s=scheme_name, t=stem: _run_loop_case(s, t))
    for name in BARRIERS:
        yield name, (lambda n=name: _run_barrier_case(n))


CASES = dict(_all_cases())

REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"


@pytest.fixture(scope="module")
def golden() -> Dict[str, str]:
    if REGEN or not GOLDEN_PATH.exists():
        table = {case_id: fingerprint(run()) for case_id, run in
                 CASES.items()}
        GOLDEN_PATH.write_text(json.dumps(table, indent=2,
                                          sort_keys=True) + "\n")
        return table
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_run_result_bytes_match_golden(case_id: str,
                                       golden: Dict[str, str]) -> None:
    """Full-metrics RunResults are byte-identical to the pinned trace."""
    assert case_id in golden, (
        f"{case_id} missing from {GOLDEN_PATH.name}; regenerate with "
        "REPRO_REGEN_GOLDEN=1")
    assert fingerprint(CASES[case_id]()) == golden[case_id], (
        f"{case_id}: RunResult bytes diverged from the golden trace -- "
        "the engine rewrite changed observable behavior")


def test_replay_is_deterministic() -> None:
    """Two identical runs produce identical fingerprints (same process)."""
    first = _run_loop_case("process-oriented", "fig2.1")
    second = _run_loop_case("process-oriented", "fig2.1")
    assert fingerprint(first) == fingerprint(second)


# ---------------------------------------------------------------------------
# counters mode: the opt-in fast path must agree with full metrics
# ---------------------------------------------------------------------------


def _run_loop_case_counters(scheme_name: str, stem: str) -> RunResult:
    app, params, processors, schedule = LOOPS[stem]
    loop = build_app(app, dict(params))
    machine = Machine(MachineConfig(processors=processors,
                                    schedule=schedule, metrics="counters"))
    return make_scheme(scheme_name).run(
        loop, config=RunConfig(machine=machine, validate=False,
                               metrics="counters"))


@pytest.mark.parametrize("stem", sorted(LOOPS))
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_counters_mode_matches_full_counters(scheme_name: str,
                                             stem: str) -> None:
    """``metrics="counters"`` skips per-event collection, nothing else:
    every end-of-run counter -- the whole ``summary()`` dict -- must
    equal the full-metrics run's, event for event."""
    full = _run_loop_case(scheme_name, stem)
    fast = _run_loop_case_counters(scheme_name, stem)
    assert fast.summary() == full.summary()
    assert fast.makespan == full.makespan
    # and the fast path really did skip collection
    assert fast.trace == [] and fast.sync_trace == []
    assert full.trace != []


# ---------------------------------------------------------------------------
# randomized-schedule spot check (property-based)
# ---------------------------------------------------------------------------

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
@settings(max_examples=12, deadline=None)
@given(scheme_name=st.sampled_from(["process-oriented",
                                    "statement-oriented",
                                    "reference-based", "instance-based"]),
       schedule=st.sampled_from(["self", "chunk", "cyclic", "block"]),
       processors=st.integers(min_value=2, max_value=9),
       n=st.integers(min_value=4, max_value=28))
def test_random_configs_full_equals_counters(scheme_name: str,
                                             schedule: str,
                                             processors: int,
                                             n: int) -> None:
    """Across randomized (scheme, schedule, P, n) configurations, the
    counters fast path and the full-metrics path agree on every final
    counter, and the full run validates against sequential semantics --
    so the hot-path rewrite holds off the pinned grid too."""
    loop = build_app("fig2.1", {"n": n})
    scheme = make_scheme(scheme_name)
    full = scheme.run(loop, config=RunConfig(
        machine=Machine(MachineConfig(processors=processors,
                                      schedule=schedule,
                                      record_trace=True))))
    fast = scheme.run(loop, config=RunConfig(
        machine=Machine(MachineConfig(processors=processors,
                                      schedule=schedule)),
        validate=False, metrics="counters"))
    assert fast.summary() == full.summary()
