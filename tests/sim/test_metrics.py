"""RunResult derived metrics."""

from __future__ import annotations

from repro.sim.engine import TaskStats
from repro.sim.metrics import RunResult


def make_result(makespan=100, busy=(40, 30), spin=(5, 10)):
    processors = [TaskStats(name=f"cpu{i}", busy=b, spin=s)
                  for i, (b, s) in enumerate(zip(busy, spin))]
    return RunResult(makespan=makespan, processors=processors,
                     memory_transactions=7, memory_hotspot=3,
                     sync_transactions=11, covered_writes=2, sync_vars=4,
                     sync_storage_words=8, init_cycles=6)


def test_totals():
    result = make_result()
    assert result.total_busy == 70
    assert result.total_spin == 15
    assert result.total_stall == 0


def test_utilization_and_spin_fraction():
    result = make_result(makespan=100, busy=(40, 30), spin=(5, 10))
    assert result.utilization == 70 / 200
    assert result.spin_fraction == 15 / 200


def test_zero_makespan_guarded():
    result = make_result(makespan=0)
    assert result.utilization == 0.0
    assert result.spin_fraction == 0.0
    assert result.speedup_over(50) == float("inf")


def test_speedup():
    result = make_result(makespan=100)
    assert result.speedup_over(400) == 4.0


def test_summary_fields():
    summary = make_result().summary()
    for field in ("makespan", "utilization", "sync_vars", "init_cycles",
                  "sync_transactions", "covered_writes",
                  "memory_transactions", "memory_hotspot", "sync_ops",
                  "spin_fraction"):
        assert field in summary
    assert summary["sync_vars"] == 4
    assert summary["covered_writes"] == 2
