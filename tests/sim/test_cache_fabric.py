"""Coherent-cache sync fabric: hits, invalidations, eviction, semantics."""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.schemes import ProcessOrientedScheme
from repro.sim import (Compute, Engine, Machine, MachineConfig, SharedMemory,
                       SyncRead, SyncUpdate, SyncWrite, WaitUntil)
from repro.sim.cache_fabric import CachedSyncFabric


def drive(fabric, memory, *procs):
    engine = Engine(memory, fabric)
    for index, gen in enumerate(procs):
        engine.spawn(gen, name=f"cpu{index}")
    return engine.run()


def test_second_read_hits():
    memory = SharedMemory()
    fabric = CachedSyncFabric(memory)
    var = fabric.alloc(1, init=7)[0]

    def reader():
        yield SyncRead(var)
        yield SyncRead(var)
        yield SyncRead(var)

    drive(fabric, memory, reader())
    assert fabric.misses == 1
    assert fabric.hits == 2
    assert fabric.transactions == 1


def test_write_invalidates_other_caches():
    memory = SharedMemory()
    fabric = CachedSyncFabric(memory)
    var = fabric.alloc(1, init=0)[0]
    seen = []

    def reader():
        yield SyncRead(var)          # miss, installs
        yield Compute(50)            # writer updates meanwhile
        value = yield SyncRead(var)  # must MISS again (invalidated)
        seen.append(value)

    def writer():
        yield Compute(10)
        yield SyncWrite(var, 42)

    drive(fabric, memory, reader(), writer())
    assert seen == [42]
    assert fabric.invalidations >= 1
    assert fabric.misses >= 2


def test_spinning_on_unchanged_variable_is_free():
    """Polls after the first are cache hits: no transactions while the
    variable is quiet -- the cache-coherent equivalent of local-image
    spinning."""
    memory = SharedMemory()
    fabric = CachedSyncFabric(memory, poll_interval=2)
    var = fabric.alloc(1, init=0)[0]

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1)

    def setter():
        yield Compute(200)
        yield SyncWrite(var, 1)

    drive(fabric, memory, waiter(), setter())
    # one initial miss + one post-invalidation miss + the write
    assert fabric.transactions <= 4
    assert fabric.hits > 20  # ~100 free polls while quiet


def test_capacity_eviction():
    memory = SharedMemory()
    fabric = CachedSyncFabric(memory, capacity=2)
    a, b, c = fabric.alloc(3, init=0)

    def reader():
        yield SyncRead(a)
        yield SyncRead(b)
        yield SyncRead(c)   # evicts a
        yield SyncRead(a)   # must miss again ("purged out of a cache")

    drive(fabric, memory, reader())
    assert fabric.evictions >= 1
    assert fabric.misses == 4


def test_update_invalidates_everyone():
    memory = SharedMemory()
    fabric = CachedSyncFabric(memory)
    var = fabric.alloc(1, init=0)[0]
    got = []

    def reader():
        yield SyncRead(var)
        yield Compute(30)
        value = yield SyncRead(var)
        got.append(value)

    def updater():
        yield Compute(5)
        value = yield SyncUpdate(var, lambda v: v + 5)
        got.append(value)

    drive(fabric, memory, reader(), updater())
    assert 5 in got and got.count(5) == 2


def test_process_oriented_on_cached_fabric_validates(machine4):
    loop = fig21_loop(n=40)
    scheme = ProcessOrientedScheme(fabric="cached")
    result = scheme.run(loop, machine=machine4)
    assert result.makespan > 0


def test_cached_fabric_costs_more_transactions_than_broadcast():
    """Each counter change costs one miss per watcher instead of one
    broadcast: the reason the paper prefers the dedicated bus."""
    loop = fig21_loop(n=80)
    machine = Machine(MachineConfig(processors=8))
    broadcast = ProcessOrientedScheme(fabric="broadcast").run(
        loop, machine=machine)
    cached = ProcessOrientedScheme(fabric="cached").run(loop,
                                                        machine=machine)
    assert cached.sync_transactions > broadcast.sync_transactions


def test_invalid_fabric_name_rejected():
    with pytest.raises(ValueError):
        ProcessOrientedScheme(fabric="telepathy")


def test_hit_rate_property():
    memory = SharedMemory()
    fabric = CachedSyncFabric(memory)
    assert fabric.hit_rate == 0.0
    var = fabric.alloc(1, init=0)[0]

    def reader():
        yield SyncRead(var)
        yield SyncRead(var)

    drive(fabric, memory, reader())
    assert fabric.hit_rate == 0.5
