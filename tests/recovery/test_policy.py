"""RecoveryPolicy validation and the manager's deterministic knobs."""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.recovery import RecoveryManager, RecoveryPolicy


def test_default_policy_is_valid():
    policy = RecoveryPolicy()
    assert policy.max_retransmits >= 1
    assert policy.fallback_exit <= policy.fallback_enter


@pytest.mark.parametrize("kwargs", [
    {"nack_delay": 0},
    {"backoff_base": 0},
    {"backoff_cap": -1},
    {"fallback_read_cost": 0},
    {"fallback_poll_interval": 0},
    {"rmw_retry_delay": 0},
    {"max_retransmits": 0},
    {"max_reincarnations": -1},
    {"window": 1},
])
def test_bad_knobs_rejected(kwargs):
    with pytest.raises(ValueError):
        RecoveryPolicy(**kwargs)


def test_inverted_hysteresis_rejected():
    with pytest.raises(ValueError, match="hysteresis"):
        RecoveryPolicy(fallback_enter=0.1, fallback_exit=0.5)
    with pytest.raises(ValueError, match="hysteresis"):
        RecoveryPolicy(fallback_exit=0.0)


def _manager(**policy_kwargs):
    plan = FaultPlan(seed=7, broadcast_loss=0.4)
    return RecoveryManager(RecoveryPolicy(**policy_kwargs), plan)


def test_backoff_is_capped_exponential():
    mgr = _manager(nack_delay=6, backoff_base=4, backoff_cap=64)
    delays = [mgr.backoff(a) for a in range(1, 8)]
    assert delays == [6 + 4, 6 + 8, 6 + 16, 6 + 32, 6 + 64, 6 + 64, 6 + 64]


def test_retransmit_forced_through_at_cap():
    mgr = _manager(max_retransmits=3)
    assert mgr.retransmit_fate(3) is False
    assert mgr.counters["forced_deliveries"] == 1
    # past the cap it stays forced
    assert mgr.retransmit_fate(5) is False


def test_recovery_stream_is_separate_from_injector_stream():
    """Recovery draws must not perturb the injector's replay: two
    managers over the same plan agree, and the injector's own stream is
    untouched by however many recovery draws happen."""
    from repro.faults import FaultInjector

    plan = FaultPlan(seed=7, broadcast_loss=0.4)
    a = RecoveryManager(RecoveryPolicy(), plan)
    b = RecoveryManager(RecoveryPolicy(), plan)
    assert [a.retransmit_fate(1) for _ in range(50)] \
        == [b.retransmit_fate(1) for _ in range(50)]

    pristine_injector = FaultInjector(plan)
    pristine = [pristine_injector.broadcast_fate(0) for _ in range(50)]
    injector = FaultInjector(plan)
    mgr = RecoveryManager(RecoveryPolicy(), plan)
    for _ in range(25):
        mgr.retransmit_fate(1)
    assert [injector.broadcast_fate(0) for _ in range(50)] == pristine


def test_loss_window_hysteresis():
    class _Engine:
        now = 0

    mgr = _manager(window=4, fallback_enter=0.5, fallback_exit=0.2)
    mgr._engine = _Engine()
    for lost in (False, False, False):
        mgr.note_broadcast(lost)
    assert not mgr.degraded  # window not yet full
    mgr.note_broadcast(True)
    assert not mgr.degraded  # 1/4 < enter threshold
    mgr.note_broadcast(True)
    assert mgr.degraded      # 2/4 hits the threshold
    assert mgr.counters["fallback_epochs"] == 1
    mgr.note_broadcast(True)
    assert mgr.degraded      # staying lossy keeps it degraded
    for _ in range(3):
        mgr.note_broadcast(False)
    assert mgr.degraded      # 1/4 still above exit threshold
    mgr.note_broadcast(False)
    assert not mgr.degraded  # 0/4 <= exit: recovered
    assert mgr.counters["fallback_epochs"] == 1  # re-entry would be a new epoch
