"""The three recovery mechanisms, end to end through the chaos harness.

Each test pins one mechanism: lost broadcasts come back via NACK +
retransmission, crashed tasks come back via checkpoint replay on a
rescue, and a sustained-lossy bus flips busy-waiting to charged
shared-memory polling of the home copy.  The final tests pin the
failure side: an unrecoverable plan still dies with a structured
diagnosis that enumerates the recovery actions attempted.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, make_plan
from repro.faults.chaos import run_chaos_case

BROADCAST_SCHEMES = ["statement-oriented", "process-oriented"]
ALL_SCHEMES = ["reference-based", "instance-based",
               "statement-oriented", "process-oriented"]


@pytest.mark.parametrize("scheme", BROADCAST_SCHEMES)
def test_lost_broadcasts_are_retransmitted(scheme):
    outcome = run_chaos_case(scheme, make_plan("lossy-bus", seed=0),
                             n=16, processors=4, recover=True)
    assert outcome.outcome == "ok", outcome.detail
    assert outcome.recovery["retransmissions"] > 0


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_crashed_tasks_are_reincarnated(scheme):
    outcome = run_chaos_case(scheme, make_plan("crash-task", seed=0),
                             n=16, processors=4, recover=True)
    assert outcome.outcome == "ok", outcome.detail
    assert outcome.recovery["reincarnations"] >= 2
    assert outcome.recovery["reclaimed_iterations"] >= 2


def test_dropped_rmw_commits_are_retried():
    # flaky-rmw hits the data-oriented key increments (SyncUpdate)
    outcome = run_chaos_case("reference-based", make_plan("flaky-rmw",
                                                          seed=0),
                             n=16, processors=4, recover=True)
    assert outcome.outcome == "ok", outcome.detail
    assert outcome.recovery["rmw_retries"] > 0


@pytest.mark.parametrize("scheme", BROADCAST_SCHEMES)
def test_sustained_loss_enters_degraded_fallback(scheme):
    plan = FaultPlan(name="very-lossy", seed=0, broadcast_loss=0.5)
    outcome = run_chaos_case(scheme, plan, n=16, processors=4,
                             recover=True)
    assert outcome.outcome == "ok", outcome.detail
    assert outcome.recovery["fallback_epochs"] >= 1
    assert outcome.recovery["fallback_polls"] > 0
    assert outcome.recovery["recovery_overhead_cycles"] > 0


@pytest.mark.parametrize("plan_name", ["lossy-bus", "flaky-rmw",
                                       "crash-task"])
def test_recoverable_plans_complete_validated(plan_name):
    """The acceptance sweep in miniature: every recoverable plan must
    end 'ok' on every scheme, and each plan must show aggregate recovery
    activity somewhere (memory-fabric schemes see no broadcasts, so the
    bound is per plan, not per run)."""
    events = 0
    for scheme in ALL_SCHEMES:
        for seed in range(2):
            outcome = run_chaos_case(scheme,
                                     make_plan(plan_name, seed=seed),
                                     n=16, processors=4, recover=True)
            assert outcome.outcome == "ok", \
                (scheme, plan_name, seed, outcome.detail)
            events += outcome.recovery_events
    assert events > 0, plan_name


def test_unrecoverable_crashes_die_diagnosed_with_actions():
    """When the reincarnation budget cannot keep up, the run must still
    die with a structured diagnosis -- now carrying the list of recovery
    actions that were attempted before death."""
    plan = FaultPlan(name="meltdown", seed=1, crash_prob=0.02)
    outcome = run_chaos_case("statement-oriented", plan, n=16,
                             processors=4, recover=True)
    assert outcome.outcome in ("deadlock-diagnosed", "limit-diagnosed")
    assert outcome.recovery_actions
    assert any("reincarnated" in a for a in outcome.recovery_actions)
    assert outcome.recovery["reincarnations"] > 0


def test_without_recovery_the_same_plans_may_die():
    """Control: crash-task without recovery loses two processors'
    obligations and the run dies (that it dies *diagnosed* is the
    fault layer's own contract, pinned elsewhere)."""
    outcome = run_chaos_case("statement-oriented",
                             make_plan("crash-task", seed=0),
                             n=16, processors=4, recover=False)
    assert outcome.outcome != "ok"
    assert outcome.recovery == {}
