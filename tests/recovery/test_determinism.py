"""Recovery determinism and the zero-overhead pin.

Two contracts: (1) a recovered run is as replayable as a faulty one --
same plan, same seed, same policy reproduce the identical execution;
(2) configuring recovery on a clean run changes nothing at all, because
the manager is only constructed when a fault injector exists.
"""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.faults import FaultPlan, make_plan
from repro.faults.chaos import run_chaos_case
from repro.recovery import RecoveryPolicy
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig

P = 4


@pytest.mark.parametrize("plan_name", ["lossy-bus", "flaky-rmw",
                                       "crash-task"])
def test_recovered_runs_replay_byte_for_byte(plan_name):
    def run():
        return run_chaos_case("process-oriented",
                              make_plan(plan_name, seed=3),
                              n=16, processors=P, recover=True)

    first, second = run(), run()
    assert first.outcome == second.outcome == "ok"
    assert first.makespan == second.makespan
    assert first.recovery == second.recovery
    assert first.recovery_actions == second.recovery_actions


def test_different_seeds_recover_differently():
    outcomes = [run_chaos_case("statement-oriented",
                               make_plan("lossy-bus", seed=seed),
                               n=16, processors=P, recover=True)
                for seed in range(4)]
    assert all(o.outcome == "ok" for o in outcomes)
    # the runs are seeded, not degenerate: some pair must differ
    assert len({(o.makespan, tuple(sorted(o.recovery.items())))
                for o in outcomes}) > 1


def _trace_key(result):
    return [(r.commit, r.kind, r.addr, r.value) for r in result.trace]


@pytest.mark.parametrize("name", scheme_names())
def test_recovery_on_clean_run_is_zero_overhead(name):
    """No fault plan (or an empty one) means the recovery layer is never
    constructed: metrics and trace are byte-identical to a clean run and
    no 'recovery' key appears in the result."""
    loop = fig21_loop(n=24, cost=8)
    scheme = make_scheme(name)
    clean = Machine(MachineConfig(processors=P)).run(
        scheme.instrument(loop))
    configured = Machine(MachineConfig(
        processors=P, fault_plan=FaultPlan(),
        recovery=RecoveryPolicy())).run(scheme.instrument(loop))
    assert clean.makespan == configured.makespan
    assert clean.summary() == configured.summary()
    assert _trace_key(clean) == _trace_key(configured)
    assert "recovery" not in configured.extra
    assert configured.recovery == {}
    assert configured.recovery_events == 0


def test_faulty_run_without_recovery_is_unchanged_by_the_layer():
    """The injector's draw stream must be identical whether or not
    recovery is configured off: same plan + seed, no recovery, twice."""
    def run():
        return run_chaos_case("statement-oriented",
                              make_plan("lossy-bus", seed=5),
                              n=16, processors=P, recover=False)

    first, second = run(), run()
    assert first.outcome == second.outcome
    assert first.makespan == second.makespan
    assert first.fault_events == second.fault_events
