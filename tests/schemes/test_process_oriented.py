"""Process-oriented scheme: the paper's proposal, end to end."""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.schemes.process_oriented import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig


@pytest.mark.parametrize("style", ["basic", "improved"])
@pytest.mark.parametrize("n_counters", [1, 2, 4, 16, 64])
def test_correct_for_any_counter_count(style, n_counters, fig21, machine4):
    """Folding is correct for every X >= 1 (see repro.core.folding)."""
    scheme = ProcessOrientedScheme(style=style, n_counters=n_counters)
    result = scheme.run(fig21, machine=machine4)
    assert result.sync_vars == n_counters


def test_small_x_throttles_but_more_x_saturates(fig21):
    """Loop time (excluding the X-register init prologue) improves
    (weakly) with X and saturates once X >> P."""
    machine = Machine(MachineConfig(processors=4))
    times = {}
    for x in (1, 4, 16, 64):
        result = ProcessOrientedScheme(n_counters=x).run(fig21,
                                                         machine=machine)
        times[x] = result.makespan - result.init_cycles
    assert times[16] <= times[1]
    assert abs(times[64] - times[16]) <= 0.05 * times[16] + 5


@pytest.mark.parametrize("split_order", ["step_first", "owner_first"])
def test_split_fields_run(split_order, fig21, machine4):
    """Both split orders complete; step-first is the paper's safe order.

    (Owner-first exposes a transient that can *logically* release a
    waiter early; with the loop's waits it still validates here because
    the transient is immediately overwritten -- the pure-logic hazard is
    pinned down in tests/core/test_process_counter.py.)"""
    scheme = ProcessOrientedScheme(split_fields=True,
                                   split_order=split_order)
    result = scheme.run(fig21, machine=machine4)
    assert result.sync_storage_words == 2 * scheme.n_counters


def test_split_fields_cost_two_broadcasts_per_release(fig21, machine4):
    atomic = ProcessOrientedScheme(split_fields=False).run(
        fig21, machine=machine4)
    split = ProcessOrientedScheme(split_fields=True).run(
        fig21, machine=machine4)
    n = fig21.bounds[0][1]
    # one extra broadcast per release (N releases)
    assert split.sync_transactions >= atomic.sync_transactions + n


def test_improved_style_skips_marks_when_unowned(fig21):
    """With X=1 every process beyond the first starts unowned, so the
    improved style must skip early marks and still validate."""
    machine = Machine(MachineConfig(processors=4))
    scheme = ProcessOrientedScheme(style="improved", n_counters=1)
    result = scheme.run(fig21, machine=machine)
    assert result.makespan > 0


def test_improved_fewer_or_equal_sync_writes_than_basic(fig21):
    machine = Machine(MachineConfig(processors=4))
    basic = ProcessOrientedScheme(style="basic", n_counters=2).run(
        fig21, machine=machine)
    improved = ProcessOrientedScheme(style="improved", n_counters=2).run(
        fig21, machine=machine)
    assert improved.sync_transactions <= basic.sync_transactions


def test_coverage_reduces_broadcasts(fig21, machine4):
    on = ProcessOrientedScheme(coverage=True).run(fig21, machine=machine4)
    off = ProcessOrientedScheme(coverage=False).run(fig21,
                                                    machine=machine4)
    assert on.covered_writes >= 0
    assert off.covered_writes == 0
    assert on.sync_transactions <= off.sync_transactions


def test_charge_init_flag(fig21, machine4):
    charged = ProcessOrientedScheme(charge_init=True).run(fig21,
                                                          machine=machine4)
    free = ProcessOrientedScheme(charge_init=False).run(fig21,
                                                        machine=machine4)
    assert charged.init_cycles > 0
    assert free.init_cycles == 0
    # init is tiny: a handful of broadcast writes, not per-element work
    assert charged.init_cycles < 200


def test_nested_loop_via_lpids(nested, machine4):
    result = ProcessOrientedScheme(processors=4).run(nested,
                                                     machine=machine4)
    assert result.makespan > 0


def test_branchy_loop(branchy, machine4):
    for eager in (True, False):
        scheme = ProcessOrientedScheme(eager_branch_marks=eager)
        result = scheme.run(branchy, machine=machine4)
        assert result.makespan > 0


def test_static_schedules_also_work(fig21):
    for schedule in ("cyclic", "block"):
        machine = Machine(MachineConfig(processors=4, schedule=schedule))
        result = ProcessOrientedScheme(processors=4).run(fig21,
                                                         machine=machine)
        assert result.makespan > 0


def test_unpruned_plan_still_correct(fig21, machine4):
    result = ProcessOrientedScheme(prune="none").run(fig21,
                                                     machine=machine4)
    assert result.makespan > 0


def test_invalid_style_rejected():
    with pytest.raises(ValueError):
        ProcessOrientedScheme(style="fancy")


def test_sync_vars_independent_of_loop_size(machine4):
    """The headline claim: X does not grow with N."""
    scheme = ProcessOrientedScheme(n_counters=16)
    small = scheme.run(fig21_loop(n=10), machine=machine4)
    large = scheme.run(fig21_loop(n=60), machine=machine4)
    assert small.sync_vars == large.sync_vars == 16
