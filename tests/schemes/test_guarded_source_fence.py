"""Regression: skipped sources must still fence before signalling.

Arc pruning lets a sink infer an *earlier* statement's completion from a
*later* source's counter/step: Advance(S2)@i (statement-oriented) or
publishing step(S1)@i (process-oriented) implies everything
program-order-before it in process i is done.  With posted writes,
"done" must mean *globally visible* -- so the fence preceding the signal
has to run even when a guard skipped the signalling statement itself,
or an earlier statement's in-flight write leaks past the
synchronization (a stale-read corruption found by the cross-scheme
property test under harsh timing).
"""

from __future__ import annotations

import pytest

from repro.depend.model import Loop, Statement, ref1
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig, MemoryConfig

#: slow posted writes + fast synchronization: the regime where a signal
#: can race ahead of its data
HARSH = MemoryConfig(latency=2, write_latency=40)
FAST_BUS = {"bus_service": 1, "propagation": 0, "issue_cost": 0}


def guarded_cover_loop(m: int) -> Loop:
    """S0's flow arc (d=1) is pruned, covered through guarded S1/S2."""
    guard = (lambda mm: lambda index: index[0] % mm != 0)(m)
    return Loop("guarded-cover", bounds=((1, 8),), body=[
        Statement("S0", writes=(ref1("A", 1, -2),), reads=(), cost=1),
        Statement("S1", writes=(ref1("B", 1, -1),), reads=(), cost=1,
                  guard=guard),
        Statement("S2", writes=(), reads=(ref1("B", 1, -2),), cost=1),
        Statement("S3", writes=(), reads=(ref1("A", 1, -3),), cost=1),
    ])


def statement_oriented_loop(m: int) -> Loop:
    """The falsifying shape for Advance chains: a guarded *sink* whose
    Advance covers the unguarded S0->S1 flow arc."""
    guard = (lambda mm: lambda index: index[0] % mm != 0)(m)
    return Loop("guarded-advance", bounds=((1, 6),), body=[
        Statement("S0", writes=(ref1("A", 1, -2),), reads=(), cost=1),
        Statement("S1", writes=(), reads=(ref1("A", 1, -3),), cost=1),
        Statement("S2", writes=(), reads=(ref1("A", 1, -1),), cost=1,
                  guard=guard),
        Statement("S3", writes=(), reads=(ref1("A", 1, 0),), cost=1),
    ])


@pytest.mark.parametrize("m", [2, 3])
def test_statement_oriented_fences_on_skipped_paths(m):
    machine = Machine(MachineConfig(processors=4, memory=HARSH))
    make_scheme("statement-oriented").run(statement_oriented_loop(m),
                                          machine=machine, validate=True)


@pytest.mark.parametrize("m", [2, 3])
@pytest.mark.parametrize("style", ["basic", "improved"])
@pytest.mark.parametrize("schedule", ["self", "block"])
def test_process_oriented_fences_on_skipped_paths(m, style, schedule):
    machine = Machine(MachineConfig(processors=4, schedule=schedule,
                                    memory=HARSH))
    scheme = make_scheme("process-oriented", style=style,
                         fabric_kwargs=FAST_BUS)
    scheme.run(guarded_cover_loop(m), machine=machine, validate=True)
