"""Scheme registry."""

from __future__ import annotations

import pytest

from repro.schemes import (InstanceBasedScheme, ProcessOrientedScheme,
                           ReferenceBasedScheme, StatementOrientedScheme,
                           make_scheme, scheme_names)


def test_names_in_paper_order():
    assert scheme_names() == ["reference-based", "instance-based",
                              "statement-oriented", "process-oriented"]


def test_factories():
    assert isinstance(make_scheme("reference-based"), ReferenceBasedScheme)
    assert isinstance(make_scheme("instance-based"), InstanceBasedScheme)
    assert isinstance(make_scheme("statement-oriented"),
                      StatementOrientedScheme)
    assert isinstance(make_scheme("process-oriented"),
                      ProcessOrientedScheme)


def test_kwargs_forwarded():
    scheme = make_scheme("process-oriented", n_counters=32, style="basic")
    assert scheme.n_counters == 32
    assert scheme.style == "basic"


def test_unknown_name():
    with pytest.raises(ValueError) as excinfo:
        make_scheme("quantum")
    assert "quantum" in str(excinfo.value)


def test_names_match_scheme_name_attribute():
    for name in scheme_names():
        assert make_scheme(name).name == name
