"""Scheme base: statement execution and the validate() harness."""

from __future__ import annotations

import pytest

from repro.schemes.base import execute_statement
from repro.schemes.process_oriented import ProcessOrientedScheme
from repro.sim import (BroadcastSyncFabric, Engine, Machine,
                       MachineConfig, SharedMemory, ValidationError,
                       mix)


def test_execute_statement_op_sequence(fig21):
    stmt = fig21.statement("S2")  # reads A[i+1]
    ops = list(execute_statement(fig21, stmt, (4,), 4))
    kinds = [type(op).__name__ for op in ops]
    assert kinds == ["Annotate", "MemRead", "Compute", "Annotate"]
    assert ops[0].payload["tag"] == ("S2", 4)
    assert ops[1].addr == ("A", 5)
    assert ops[-1].payload["tag"] is None


def test_execute_statement_writes_mixed_value(fig21):
    stmt = fig21.statement("S1")  # writes A[i+3]
    memory = SharedMemory()
    engine = Engine(memory, BroadcastSyncFabric())
    engine.spawn(execute_statement(fig21, stmt, (2,), 2), name="p")
    engine.run()
    assert memory.peek(("A", 5)) == mix("S1", 2, [])


def test_validate_accepts_correct_run(fig21, machine4):
    scheme = ProcessOrientedScheme(processors=4)
    instrumented = scheme.instrument(fig21)
    result = machine4.run(instrumented)
    instrumented.validate(result)  # should not raise


def test_validate_rejects_corrupted_final_state(fig21, machine4):
    scheme = ProcessOrientedScheme(processors=4)
    instrumented = scheme.instrument(fig21)
    result = machine4.run(instrumented)
    first_a = next(addr for addr in result.final_memory
                   if addr[0] == "A")
    result.final_memory[first_a] = -1
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_validate_rejects_corrupted_reads(fig21, machine4):
    scheme = ProcessOrientedScheme(processors=4)
    instrumented = scheme.instrument(fig21)
    result = machine4.run(instrumented)
    read = next(r for r in result.trace if r.kind == "R"
                and r.tag is not None)
    read.value = -12345
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_run_helper_requires_trace_for_validation(fig21):
    scheme = ProcessOrientedScheme(processors=4)
    machine = Machine(MachineConfig(processors=4, record_trace=False))
    with pytest.raises(ValueError):
        scheme.run(fig21, machine=machine, validate=True)
    # but runs fine without validation
    result = scheme.run(fig21, machine=machine, validate=False)
    assert result.makespan > 0


def test_iterations_are_lpids(nested):
    scheme = ProcessOrientedScheme(processors=4)
    instrumented = scheme.instrument(nested)
    assert list(instrumented.iterations) == list(
        range(1, nested.n_iterations + 1))
