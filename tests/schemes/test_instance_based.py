"""Instance-based scheme: renaming, full/empty bits, copy accounting."""

from __future__ import annotations

from repro.apps.kernels import fig21_loop, recurrence_loop
from repro.depend.model import Loop, Statement, ref1
from repro.schemes.instance_based import InstanceBasedScheme, rename
from repro.sim import Machine, MachineConfig


def test_rename_single_assignment():
    """Every write creates a fresh instance: no location written twice."""
    loop = fig21_loop(n=12)
    instances, _reads, writes = rename(loop)
    writer_instances = [iid for ids in writes.values() for iid in ids]
    assert len(writer_instances) == len(set(writer_instances))
    all_copies = [addr for inst in instances for addr in inst.copies]
    assert len(all_copies) == len(set(all_copies))


def test_rename_versions_increase_per_element():
    """A[i] is written by S4 at i and by S1 at i-3: two versions."""
    loop = fig21_loop(n=12)
    instances, _reads, _writes = rename(loop)
    versions = sorted(inst.version for inst in instances
                      if inst.base_addr == ("A", 6))
    assert versions == [0, 1]  # S1@3 writes v0... then S4@6 writes v1


def test_readers_get_private_copies():
    """An instance read R times carries max(1, R) copies (HEP reads
    consume, so each reader needs its own)."""
    loop = fig21_loop(n=12)
    instances, reads, _writes = rename(loop)
    for instance in instances:
        assert len(instance.copies) == max(1, len(instance.readers))
    # every read binding points at a distinct copy of its instance
    seen = set()
    for bindings in reads.values():
        for binding in bindings:
            key = (binding.instance_id, binding.copy_index)
            assert key not in seen
            seen.add(key)


def test_reads_bound_to_sequentially_correct_version():
    """In A[i] = A[i-1], the read at iteration i binds to the instance
    written at iteration i-1 (version over version-0 initial)."""
    loop = recurrence_loop(n=6)
    instances, reads, writes = rename(loop)
    for i in range(2, 7):
        binding = reads[("S1", i)][0]
        instance = instances[binding.instance_id]
        assert instance.writer == ("S1", i - 1)
    # iteration 1 reads the pre-loop (version 0) instance
    first = instances[reads[("S1", 1)][0].instance_id]
    assert first.writer is None


def test_storage_blowup_reported():
    loop = fig21_loop(n=20)
    scheme = InstanceBasedScheme()
    instrumented = scheme.instrument(loop)
    # instances >> elements: that is the renaming storage cost
    assert instrumented.data_copy_words > 20
    assert instrumented.sync_vars == instrumented.data_copy_words


def test_run_validates(fig21, machine4):
    result = InstanceBasedScheme().run(fig21, machine=machine4)
    assert result.makespan > 0
    assert result.init_cycles > 0   # version-0 instances materialized


def test_run_without_consume(fig21, machine4):
    consume = InstanceBasedScheme(consume=True).run(fig21,
                                                    machine=machine4)
    keep = InstanceBasedScheme(consume=False).run(fig21, machine=machine4)
    # consuming reads add one bit-write per read
    assert consume.sync_transactions > keep.sync_transactions


def test_writers_do_not_wait():
    """No anti/output waits: a loop with ONLY anti dependences runs with
    zero spin under renaming."""
    body = [
        Statement("S1", reads=(ref1("A", 1, 1),)),
        Statement("S2", writes=(ref1("A", 1, 0),)),
    ]
    loop = Loop("anti-only", bounds=((1, 12),), body=body)
    machine = Machine(MachineConfig(processors=4))
    result = InstanceBasedScheme().run(loop, machine=machine)
    assert result.total_spin == 0


def test_nested_loop_supported(nested, machine4):
    result = InstanceBasedScheme().run(nested, machine=machine4)
    assert result.makespan > 0


def test_branchy_supported(branchy, machine4):
    result = InstanceBasedScheme().run(branchy, machine=machine4)
    assert result.makespan > 0
