"""Cross-scheme property tests: sequential equivalence on random loops.

The strongest correctness statement in the repository: for randomly
generated constant-distance DOACROSS loops, *every* synchronization
scheme must produce an execution indistinguishable from sequential
semantics (same values read by every statement instance, same final
array contents), on machines with different processor counts and
schedulers.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.depend.model import Loop, Statement, ref1
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig

SCHEME_NAMES = scheme_names()


@st.composite
def constant_distance_loops(draw):
    """A random 1-D loop whose refs are A[i+c] / B[i+c], c in [-3, 3]."""
    n_statements = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=6, max_value=14))
    body = []
    for position in range(n_statements):
        array_w = draw(st.sampled_from(["A", "B"]))
        array_r = draw(st.sampled_from(["A", "B"]))
        writes = ()
        reads = ()
        if draw(st.booleans()):
            writes = (ref1(array_w, 1, draw(st.integers(-3, 3))),)
        if draw(st.booleans()) or not writes:
            reads = (ref1(array_r, 1, draw(st.integers(-3, 3))),)
        guard = None
        if draw(st.booleans()):
            modulus = draw(st.integers(min_value=2, max_value=3))
            guard = (lambda m: lambda index: index[0] % m != 0)(modulus)
        body.append(Statement(f"S{position}", writes=writes, reads=reads,
                              cost=draw(st.integers(1, 12)), guard=guard))
    return Loop("random", bounds=((1, n),), body=body)


@pytest.mark.parametrize("name", SCHEME_NAMES)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_random_loops_sequentially_equivalent(name, data):
    loop = data.draw(constant_distance_loops())
    processors = data.draw(st.sampled_from([1, 2, 4]))
    schedule = data.draw(st.sampled_from(["self", "cyclic", "block"]))
    kwargs = {}
    if name == "process-oriented":
        kwargs["n_counters"] = data.draw(st.sampled_from([1, 2, 8]))
        kwargs["style"] = data.draw(st.sampled_from(["basic", "improved"]))
    scheme = make_scheme(name, **kwargs)
    machine = Machine(MachineConfig(processors=processors,
                                    schedule=schedule))
    # scheme.run validates reads, final state and (for non-renaming
    # schemes) per-element dependence commit order
    result = scheme.run(loop, machine=machine, validate=True)
    assert result.makespan >= 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_all_schemes_agree_on_final_state(data):
    """The three non-renaming schemes leave byte-identical array state."""
    loop = data.draw(constant_distance_loops())
    machine = Machine(MachineConfig(processors=4))
    finals = []
    for name in ("reference-based", "statement-oriented",
                 "process-oriented"):
        result = make_scheme(name).run(loop, machine=machine)
        arrays_only = {addr: value
                       for addr, value in result.final_memory.items()
                       if addr[0] in ("A", "B")}
        finals.append(arrays_only)
    assert finals[0] == finals[1] == finals[2]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_process_oriented_split_fields_equivalent(data):
    """Split two-field PC updates never change the computed result."""
    loop = data.draw(constant_distance_loops())
    machine = Machine(MachineConfig(processors=4))
    for split in (False, True):
        scheme = make_scheme("process-oriented", split_fields=split,
                             n_counters=4)
        scheme.run(loop, machine=machine, validate=True)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_random_loops_under_harsh_timing(data):
    """Stress the visibility rules: slow posted writes + a fast sync
    bus is the regime where a missing fence or an unsound pruning
    decision turns into a stale read.  Every scheme must still be
    sequentially equivalent."""
    from repro.sim import MemoryConfig
    loop = data.draw(constant_distance_loops())
    name = data.draw(st.sampled_from(SCHEME_NAMES))
    machine = Machine(MachineConfig(
        processors=4,
        memory=MemoryConfig(latency=2, write_latency=40)))
    kwargs = {}
    if name == "process-oriented":
        kwargs["fabric_kwargs"] = {"bus_service": 1, "propagation": 0,
                                   "issue_cost": 0}
    make_scheme(name, **kwargs).run(loop, machine=machine, validate=True)


@st.composite
def nested_constant_distance_loops(draw):
    """Random 2-deep nests with refs A[i+c1, j+c2]."""
    from repro.depend.model import ArrayRef, index_expr
    n = draw(st.integers(min_value=3, max_value=5))
    m = draw(st.integers(min_value=3, max_value=5))
    n_statements = draw(st.integers(min_value=1, max_value=3))
    body = []
    margin = 3
    for position in range(n_statements):
        def make_ref():
            array = draw(st.sampled_from(["A", "B"]))
            c1 = draw(st.integers(-2, 2))
            c2 = draw(st.integers(-2, 2))
            return ArrayRef(array, (index_expr(0, 2, c1),
                                    index_expr(1, 2, c2)))
        writes = (make_ref(),) if draw(st.booleans()) else ()
        reads = (make_ref(),) if (draw(st.booleans()) or not writes) else ()
        body.append(Statement(f"S{position}", writes=writes, reads=reads,
                              cost=draw(st.integers(1, 8))))
    shapes = {"A": (n + 2 * margin, m + 2 * margin),
              "B": (n + 2 * margin, m + 2 * margin)}
    return Loop("nested-rand", bounds=((margin, margin + n - 1),
                                       (margin, margin + m - 1)),
                body=body, array_shapes=shapes)


@pytest.mark.parametrize("name", SCHEME_NAMES)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_random_nested_loops_sequentially_equivalent(name, data):
    """Coalesced 2-deep nests (with boundary skips and possibly
    lex-negative inner components) under every scheme."""
    loop = data.draw(nested_constant_distance_loops())
    machine = Machine(MachineConfig(processors=4))
    make_scheme(name).run(loop, machine=machine, validate=True)
