"""Statement-oriented scheme: Advance/Await semantics and their cost."""

from __future__ import annotations

from repro.apps.kernels import fig21_loop, fig21_loop_with_delay
from repro.schemes.statement_oriented import (StatementOrientedScheme,
                                              at_least)
from repro.schemes.process_oriented import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig


def test_at_least_monotone():
    predicate = at_least(5)
    assert predicate(5) and predicate(9)
    assert not predicate(4)


def test_one_counter_per_source(fig21, machine4):
    scheme = StatementOrientedScheme()
    instrumented = scheme.instrument(fig21)
    # monotonic pruning keeps sources S1..S4
    assert instrumented.sync_vars == 4
    result = machine4.run(instrumented)
    instrumented.validate(result)


def test_advance_order_is_strictly_sequential(fig21):
    """After the run, every SC holds the last iteration: each Advance
    waited for its predecessor (sc=i-1) before writing i."""
    scheme = StatementOrientedScheme()
    machine = Machine(MachineConfig(processors=4))
    instrumented = scheme.instrument(fig21)
    result = machine.run(instrumented)
    instrumented.validate(result)
    for sid, var in instrumented._sc_vars.items():
        # fabric value after the run = last advancing iteration
        assert result.sync_transactions > 0
    # final counter values all reached N
    fabric_values = [instrumented._sc_vars[sid]
                     for sid in instrumented.source_sids]
    assert len(fabric_values) == 4


def test_horizontal_sharing_hurts_on_delay():
    """One slow S1 instance stalls every later iteration's Advance chain;
    the process-oriented scheme's vertical sharing does not (section 4).
    """
    loop = fig21_loop_with_delay(n=48, slow_iteration=16, slow_cost=900)
    machine = Machine(MachineConfig(processors=8))
    statement = StatementOrientedScheme().run(loop, machine=machine)
    process = ProcessOrientedScheme(processors=8).run(loop, machine=machine)
    assert process.makespan < statement.makespan
    assert process.total_spin < statement.total_spin


def test_without_delay_costs_are_comparable():
    loop = fig21_loop(n=48)
    machine = Machine(MachineConfig(processors=8))
    statement = StatementOrientedScheme().run(loop, machine=machine)
    process = ProcessOrientedScheme(processors=8).run(loop, machine=machine)
    assert abs(statement.makespan - process.makespan) < \
        0.25 * statement.makespan


def test_boundary_awaits_skipped(recurrence, machine4):
    """Await for iteration 0 must be skipped, not deadlock."""
    result = StatementOrientedScheme().run(recurrence, machine=machine4)
    assert result.makespan > 0


def test_advance_on_every_path(branchy, machine4):
    """Guarded sources still advance their SC (Example 3's rule);
    otherwise the Advance chain would deadlock."""
    result = StatementOrientedScheme().run(branchy, machine=machine4)
    assert result.makespan > 0


def test_prune_mode_configurable(fig21, machine4):
    exact = StatementOrientedScheme(prune="exact")
    none = StatementOrientedScheme(prune="none")
    r_exact = exact.run(fig21, machine=machine4)
    r_none = none.run(fig21, machine=machine4)
    # unpruned enforces more arcs -> at least as many sync operations
    assert r_none.total_sync_ops >= r_exact.total_sync_ops


def test_charge_init_flag(fig21, machine4):
    charged = StatementOrientedScheme(charge_init=True).run(
        fig21, machine=machine4)
    free = StatementOrientedScheme(charge_init=False).run(
        fig21, machine=machine4)
    assert charged.init_cycles > 0
    assert free.init_cycles == 0


def test_nested_loop_supported(nested, machine4):
    result = StatementOrientedScheme().run(nested, machine=machine4)
    assert result.makespan > 0


def test_scheme_flags():
    assert not StatementOrientedScheme.supports_variable_index
    assert StatementOrientedScheme.name == "statement-oriented"
