"""Failure injection: broken synchronization must fail validation.

These tests prove the validation harness is not vacuous: deliberately
sabotaged schemes (dropped waits, zeroed thresholds, missing releases)
produce detectable races or deadlocks under the same machines on which
the real schemes validate cleanly.
"""

from __future__ import annotations

from typing import Generator

import pytest

from repro.apps.kernels import fig21_loop
from repro.core.codegen import PlannedWait, StatementPlan, SyncPlan
from repro.depend.model import Loop, Statement, ref1
from repro.schemes.process_oriented import ProcessOrientedScheme
from repro.schemes.statement_oriented import StatementOrientedScheme
from repro.sim import (DeadlockError, Machine, MachineConfig,
                       ValidationError)


def tight_loop():
    """A loop whose sink precedes its source textually: the sink of
    B's flow dependence (S1) runs at the *start* of iteration i while
    the source (S3) runs at the *end* of iteration i-1, so without the
    wait the race manifests immediately (Fig 2.1's layout, by contrast,
    self-orders: its doacross delay is zero)."""
    body = [
        Statement("S1", reads=(ref1("B", 1, -1),), cost=1),
        Statement("S2", writes=(ref1("C", 1, 0),), cost=40),
        Statement("S3", writes=(ref1("B", 1, 0),), cost=1),
    ]
    return Loop("racy", bounds=((1, 40),), body=body)


def machine():
    return Machine(MachineConfig(processors=8))


def strip_waits(plan: SyncPlan) -> SyncPlan:
    """A sabotaged plan: all waits removed, publications kept."""
    stripped = [StatementPlan(sid=p.sid, waits=(),
                              source_step=p.source_step,
                              is_last_source=p.is_last_source)
                for p in plan.statements]
    return SyncPlan(loop=plan.loop, arcs=plan.arcs, statements=stripped,
                    step_of=plan.step_of, n_sources=plan.n_sources)


def test_dropping_all_waits_is_detected():
    loop = tight_loop()
    scheme = ProcessOrientedScheme(processors=8)
    instrumented = scheme.instrument(loop)
    instrumented.plan = strip_waits(instrumented.plan)
    instrumented.recompile()  # op streams are compiled at instrument time
    result = machine().run(instrumented)
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_dropping_one_wait_is_detected():
    """Removing only S1's wait: S1 reads stale B[i-1] values."""
    loop = tight_loop()
    scheme = ProcessOrientedScheme(processors=8)
    instrumented = scheme.instrument(loop)
    plan = instrumented.plan
    sabotaged = [
        StatementPlan(sid=p.sid,
                      waits=() if p.sid == "S1" else p.waits,
                      source_step=p.source_step,
                      is_last_source=p.is_last_source)
        for p in plan.statements]
    instrumented.plan = SyncPlan(loop=plan.loop, arcs=plan.arcs,
                                 statements=sabotaged,
                                 step_of=plan.step_of,
                                 n_sources=plan.n_sources)
    instrumented.recompile()
    result = machine().run(instrumented)
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_publishing_steps_early_is_detected():
    """Marking every step *before* executing the statement breaks the
    source-completes-first guarantee."""
    loop = tight_loop()
    scheme = ProcessOrientedScheme(processors=8, style="basic")
    instrumented = scheme.instrument(loop)

    def premature(pid: int) -> Generator:
        # publish everything immediately, then run the plain body
        from repro.core.primitives import get_pc, release_pc, set_pc
        from repro.schemes.base import execute_statement
        yield from get_pc(instrumented.counters, pid)
        for step in range(1, instrumented.plan.n_sources):
            yield from set_pc(instrumented.counters, pid, step)
        yield from release_pc(instrumented.counters, pid)
        index = loop.index_of_lpid(pid)
        for stmt in loop.body:
            yield from execute_statement(loop, stmt, index, pid)

    instrumented.make_process = premature
    result = machine().run(instrumented)
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_missing_release_deadlocks():
    """A process that never releases its counter starves pid + X."""
    loop = fig21_loop(n=30, cost=1)  # any loop with sources will do
    scheme = ProcessOrientedScheme(processors=4, n_counters=2,
                                   style="basic")
    instrumented = scheme.instrument(loop)
    original = instrumented.make_process

    def leaky(pid: int) -> Generator:
        for op in original(pid):
            from repro.sim.ops import SyncWrite
            if (isinstance(op, SyncWrite)
                    and isinstance(op.value, tuple)
                    and op.value[0] > pid):
                continue  # swallow the release broadcast
            yield op

    instrumented.make_process = leaky
    with pytest.raises(DeadlockError):
        machine().run(instrumented)


def test_statement_scheme_without_awaits_detected():
    loop = tight_loop()
    scheme = StatementOrientedScheme()
    instrumented = scheme.instrument(loop)

    # Await becomes a no-op: drop every arc (the Advance chain stays,
    # since the counters were assigned per source at instrument time)
    # and recompile the op streams.
    instrumented.arcs = []
    instrumented.recompile()
    result = machine().run(instrumented)
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_unsabotaged_schemes_pass_the_same_machines():
    """Control: the honest schemes validate on identical configs."""
    loop = tight_loop()
    for scheme in (ProcessOrientedScheme(processors=8),
                   StatementOrientedScheme()):
        scheme.run(loop, machine=machine())  # raises if invalid


def test_signaling_before_visibility_detected():
    """Section 2.2 requirement (1): a source may signal completion only
    after its write is globally visible.  Dropping the Fence while the
    memory is slow and the sync bus is fast lets the signal overtake the
    data -- the validator must catch the stale read."""
    from repro.sim.ops import Fence
    from repro.sim import MachineConfig, MemoryConfig

    loop = tight_loop()
    scheme = ProcessOrientedScheme(
        processors=8, fabric_kwargs={"bus_service": 1, "propagation": 0,
                                     "issue_cost": 0})
    instrumented = scheme.instrument(loop)
    original = instrumented.make_process

    def fenceless(pid):
        for op in original(pid):
            if isinstance(op, Fence):
                continue
            yield op

    instrumented.make_process = fenceless
    slow_writes = Machine(MachineConfig(
        processors=8, memory=MemoryConfig(latency=2, write_latency=60)))
    result = slow_writes.run(instrumented)
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_with_fence_the_same_machine_validates():
    """Control for the fence ablation: the honest scheme passes on the
    identical slow-memory/fast-bus machine."""
    from repro.sim import MachineConfig, MemoryConfig

    loop = tight_loop()
    scheme = ProcessOrientedScheme(
        processors=8, fabric_kwargs={"bus_service": 1, "propagation": 0,
                                     "issue_cost": 0})
    slow_writes = Machine(MachineConfig(
        processors=8, memory=MemoryConfig(latency=2, write_latency=60)))
    scheme.run(loop, machine=slow_writes)  # raises if invalid


def test_off_by_one_wait_distance_detected():
    """Waiting on pid-2 instead of pid-1 (an off-by-one in the emitted
    distance) lets the true predecessor race ahead undetected -- the
    validator must flag the stale reads."""
    from repro.core.codegen import SyncPlan, StatementPlan, PlannedWait

    loop = tight_loop()
    scheme = ProcessOrientedScheme(processors=8)
    instrumented = scheme.instrument(loop)
    plan = instrumented.plan
    sabotaged = []
    for p in plan.statements:
        waits = tuple(PlannedWait(dist=w.dist + 1, step=w.step, src=w.src)
                      for w in p.waits)
        sabotaged.append(StatementPlan(sid=p.sid, waits=waits,
                                       source_step=p.source_step,
                                       is_last_source=p.is_last_source))
    instrumented.plan = SyncPlan(loop=plan.loop, arcs=plan.arcs,
                                 statements=sabotaged,
                                 step_of=plan.step_of,
                                 n_sources=plan.n_sources)
    instrumented.recompile()
    result = machine().run(instrumented)
    with pytest.raises(ValidationError):
        instrumented.validate(result)


def test_wrong_step_number_detected():
    """Waiting for step 1 when the true source is step 2 releases the
    sink after the *first* source statement -- too early."""
    from repro.core.codegen import SyncPlan, StatementPlan, PlannedWait
    from repro.depend.model import Loop, Statement, ref1

    # SinkB waits on source step 2 (Sb), which completes only after a
    # long computation; step 1 (Sa) completes almost immediately.
    # Demoting SinkB's wait to step 1 releases it ~60 cycles early into
    # a stale B read.  (The sink-before-source interleaving is chosen so
    # coverage pruning cannot legally remove any of the three arcs.)
    body = [
        Statement("SinkA", reads=(ref1("A", 1, -1),), cost=1),
        Statement("Sa", writes=(ref1("A", 1, 0),), cost=1),
        Statement("SinkB", reads=(ref1("B", 1, -1),), cost=1),
        Statement("Smid", reads=(ref1("D", 1, 0),), cost=60),
        Statement("Sb", writes=(ref1("B", 1, 0),), cost=1),
        Statement("Sc", writes=(ref1("C", 1, 0),), cost=1),
        Statement("SinkC", reads=(ref1("C", 1, -1),), cost=1),
    ]
    loop = Loop("steps", bounds=((1, 30),), body=body)
    scheme = ProcessOrientedScheme(processors=8)
    instrumented = scheme.instrument(loop)
    plan = instrumented.plan
    sabotaged = []
    for p in plan.statements:
        waits = tuple(PlannedWait(dist=w.dist, step=1, src=w.src)
                      for w in p.waits)  # all waits demoted to step 1
        sabotaged.append(StatementPlan(sid=p.sid, waits=waits,
                                       source_step=p.source_step,
                                       is_last_source=p.is_last_source))
    instrumented.plan = SyncPlan(loop=plan.loop, arcs=plan.arcs,
                                 statements=sabotaged,
                                 step_of=plan.step_of,
                                 n_sources=plan.n_sources)
    instrumented.recompile()
    result = machine().run(instrumented)
    with pytest.raises(ValidationError):
        instrumented.validate(result)
