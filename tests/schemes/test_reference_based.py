"""Reference-based scheme: Fig. 3.1(a)'s access numbering and costs."""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.schemes.reference_based import (ReferenceBasedScheme,
                                           plan_accesses)
from repro.sim import Machine, MachineConfig


def test_fig31a_access_order_for_one_element():
    """The circled numbers of Fig. 3.1(a): element A[i+3] is touched by
    S1 (write, #0), S2 at i+2 (read, #1), S3 at i+1 (read, #2), S4 at
    i+3 (write, #3), S5 at i+4 (read, #4) -- with both reads waiting for
    threshold 1 so they can run in either order."""
    loop = fig21_loop(n=20)
    plan = plan_accesses(loop)
    element = ("A", 10)  # written by S1 at i=7
    slots = sorted(
        ((tag, access) for tag, accesses in plan.items()
         for access in accesses if access.addr == element),
        key=lambda item: item[1].ordinal)
    assert [(tag[0], tag[1], access.kind, access.ordinal, access.threshold)
            for tag, access in slots] == [
        ("S1", 7, "W", 0, 0),
        ("S3", 8, "R", 1, 1),   # sequential order: S3 of i=8 first,
        ("S2", 9, "R", 2, 1),   # same threshold as S3: any order
        ("S4", 10, "W", 3, 3),  # all three earlier accesses done
        ("S5", 11, "R", 4, 4),
    ]


def test_reads_before_last_write_free():
    """An element never written waits for threshold 0 (immediate)."""
    loop = fig21_loop(n=6)
    plan = plan_accesses(loop)
    # A[0] is only read (by S5 at i=1): threshold 0
    accesses = [a for accesses in plan.values() for a in accesses
                if a.addr == ("A", 0)]
    assert accesses == [type(accesses[0])("R", ("A", 0), 0, 0)]


def test_key_count_is_element_count():
    loop = fig21_loop(n=20)
    scheme = ReferenceBasedScheme()
    instrumented = scheme.instrument(loop)
    # elements touched: A[0] .. A[23] -> 24 keys (one per datum)
    assert instrumented.sync_vars == 24


def test_run_validates_and_reports_costs(fig21, machine4):
    scheme = ReferenceBasedScheme()
    result = scheme.run(fig21, machine=machine4)
    assert result.sync_vars == fig21.bounds[0][1] + 4
    assert result.init_cycles > 0          # key initialization charged
    assert result.sync_transactions > 0    # keys cost memory transactions


def test_init_overhead_scales_with_data_size():
    scheme = ReferenceBasedScheme()
    machine = Machine(MachineConfig(processors=4))
    small = scheme.run(fig21_loop(n=20), machine=machine)
    large = scheme.run(fig21_loop(n=80), machine=machine)
    assert large.init_cycles > small.init_cycles
    assert large.sync_vars > small.sync_vars


def test_charge_init_flag():
    scheme = ReferenceBasedScheme(charge_init=False)
    machine = Machine(MachineConfig(processors=4))
    result = scheme.run(fig21_loop(n=20), machine=machine)
    assert result.init_cycles == 0


def test_guarded_statements_not_planned_when_skipped(branchy):
    plan = plan_accesses(branchy)
    sb = branchy.statement("Sb")
    for i in range(*branchy.bounds[0]):
        executed = sb.executes_at((i,))
        assert (("Sb", i) in plan) == executed


def test_branchy_runs_correctly(branchy, machine4):
    result = ReferenceBasedScheme().run(branchy, machine=machine4)
    assert result.makespan > 0
