"""Deterministic stall/crash window validation and injection."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan


# -- validation --------------------------------------------------------


def test_window_plans_are_non_empty():
    assert not FaultPlan(stall_windows=(("cpu0", 10, 20),)).is_empty
    assert not FaultPlan(crash_windows=(("cpu0", 10, 20),)).is_empty


@pytest.mark.parametrize("knob", ["stall_windows", "crash_windows"])
def test_negative_start_rejected(knob):
    with pytest.raises(ValueError, match="start"):
        FaultPlan(**{knob: (("cpu0", -1, 5),)})


@pytest.mark.parametrize("knob", ["stall_windows", "crash_windows"])
@pytest.mark.parametrize("span", [(5, 5), (5, 2)])
def test_empty_or_inverted_window_rejected(knob, span):
    start, end = span
    with pytest.raises(ValueError, match="end"):
        FaultPlan(**{knob: (("cpu0", start, end),)})


@pytest.mark.parametrize("knob", ["stall_windows", "crash_windows"])
def test_overlapping_windows_per_task_rejected(knob):
    with pytest.raises(ValueError, match="overlap"):
        FaultPlan(**{knob: (("cpu0", 0, 10), ("cpu0", 5, 15))})


@pytest.mark.parametrize("knob", ["stall_windows", "crash_windows"])
def test_disjoint_and_cross_task_windows_allowed(knob):
    # touching endpoints are not an overlap, nor are other tasks' spans
    plan = FaultPlan(**{knob: (("cpu0", 0, 10), ("cpu0", 10, 20),
                               ("cpu1", 5, 15))})
    assert not plan.is_empty


def test_duplicate_crash_after_task_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        FaultPlan(crash_after_ops=(("cpu0", 5), ("cpu0", 9)))


def test_describe_mentions_windows():
    text = FaultPlan(stall_windows=(("cpu0", 10, 20),),
                     crash_windows=(("cpu1", 30, 40),)).describe()
    assert "stall" in text and "crash" in text


# -- injection ---------------------------------------------------------


def test_stall_window_fires_once_and_stalls_to_its_end():
    injector = FaultInjector(FaultPlan(stall_windows=(("cpu0", 10, 25),)))
    assert injector.stall_cycles("cpu0", now=5) == 0    # before the window
    assert injector.stall_cycles("cpu1", now=15) == 0   # other task
    assert injector.stall_cycles("cpu0", now=15) == 10  # inside: stall to end
    assert injector.stall_cycles("cpu0", now=16) == 0   # consumed
    assert injector.counters["injected_stalls"] == 1
    assert injector.counters["injected_stall_cycles"] == 10


def test_crash_window_kills_inside_only():
    injector = FaultInjector(FaultPlan(crash_windows=(("cpu0", 10, 25),)))
    assert not injector.should_crash("cpu0", 99, now=5)
    assert not injector.should_crash("cpu1", 99, now=15)
    assert injector.should_crash("cpu0", 99, now=15)
    assert injector.counters["crashes"] == 1


def test_stale_windows_are_pruned_to_later_ones():
    # the task never steps inside the first window; a probe after it
    # must skip to (and fire) the second
    injector = FaultInjector(FaultPlan(
        stall_windows=(("cpu0", 10, 20), ("cpu0", 30, 40))))
    assert injector.stall_cycles("cpu0", now=35) == 5
    assert injector.stall_cycles("cpu0", now=36) == 0


def test_windows_consume_no_randomness():
    """Deterministic windows must not perturb probability-knob draws."""
    base = FaultPlan(seed=11, broadcast_loss=0.5)
    pristine = FaultInjector(base)
    reference = [pristine.broadcast_fate(0) for _ in range(100)]
    windowed = FaultInjector(FaultPlan(
        seed=11, broadcast_loss=0.5,
        stall_windows=(("cpu0", 10, 20),),
        crash_windows=(("cpu1", 10, 20),)))
    for now in range(50):
        windowed.stall_cycles("cpu0", now=now)
        windowed.should_crash("cpu1", 0, now=now)
    assert [windowed.broadcast_fate(0) for _ in range(100)] == reference
