"""JSON serialization of hazard reports and chaos outcomes."""

from __future__ import annotations

import json

from repro.faults import FaultPlan, HazardReport, make_plan
from repro.faults.chaos import run_chaos_case
from repro.sim import DeadlockError, Machine, MachineConfig
from repro.schemes import make_scheme
from repro.apps.kernels import fig21_loop


def _crashed_report() -> HazardReport:
    """A real report: crash two processors with no recovery configured."""
    scheme = make_scheme("statement-oriented")
    machine = Machine(MachineConfig(
        processors=4,
        fault_plan=FaultPlan(crash_after_ops=(("cpu1", 30), ("cpu2", 60)))))
    try:
        machine.run(scheme.instrument(fig21_loop(n=16)))
    except DeadlockError as err:
        return err.report
    raise AssertionError("expected the crashed run to deadlock")


def test_report_to_json_is_json_native():
    payload = _crashed_report().to_json()
    text = json.dumps(payload)  # must not raise
    assert json.loads(text) == payload
    assert "cpu1" in payload["crashed"]
    assert payload["tasks"]
    assert {"task", "state", "var", "reason", "since", "blocked_for",
            "waits_on", "value"} <= set(payload["tasks"][0])


def test_report_round_trips_through_from_json():
    report = _crashed_report()
    payload = report.to_json()
    rebuilt = HazardReport.from_json(json.loads(json.dumps(payload)))
    # to_json is a fixed point: re-serializing the rebuilt report must
    # produce the identical payload (no double-repr of values)
    assert rebuilt.to_json() == payload
    assert rebuilt.now == report.now
    assert rebuilt.cycle == report.cycle
    assert rebuilt.crashed == report.crashed
    assert rebuilt.graph.edges() == report.graph.edges()
    assert [d.task for d in rebuilt.tasks] == [d.task for d in report.tasks]


def test_diagnosed_report_carries_recovery_state():
    outcome = run_chaos_case(
        "statement-oriented",
        FaultPlan(name="meltdown", seed=1, crash_prob=0.02),
        n=16, processors=4, recover=True)
    assert outcome.outcome in ("deadlock-diagnosed", "limit-diagnosed")
    assert outcome.recovery_actions
    assert outcome.recovery.get("reincarnations", 0) > 0


def test_chaos_outcome_to_json():
    outcome = run_chaos_case("process-oriented",
                             make_plan("crash-task", seed=0),
                             n=16, processors=4, recover=True)
    payload = outcome.to_json()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["outcome"] == "ok"
    assert payload["scheme"] == "process-oriented"
    assert payload["plan"] == "crash-task"
    assert payload["recovery"]["reincarnations"] >= 2
    assert isinstance(payload["recovery_actions"], list)
