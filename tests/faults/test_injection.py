"""Engine- and machine-level fault injection semantics."""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.faults import FaultInjector, FaultPlan
from repro.schemes import make_scheme
from repro.sim import (BroadcastSyncFabric, Compute, DeadlockError, Engine,
                       Machine, MachineConfig, MemRead, MemoryConfig,
                       SharedMemory, SyncUpdate, SyncWrite, WaitUntil)


def make_engine(plan, fabric=None, **kwargs):
    fabric = fabric or BroadcastSyncFabric()
    engine = Engine(SharedMemory(MemoryConfig(latency=2)), fabric,
                    injector=FaultInjector(plan), **kwargs)
    return engine, fabric


def test_injected_stalls_delay_completion():
    plan = FaultPlan(seed=1, stall_prob=1.0, stall_cycles=(50, 50))
    engine, _ = make_engine(plan)

    def proc():
        yield Compute(10)

    stats = engine.spawn(proc(), name="t")
    makespan = engine.run()
    # two steps (the Compute, the StopIteration resume) x 50 stall cycles
    assert makespan == 110
    assert stats.stall >= 100
    assert engine.injector.counters["injected_stalls"] == 2


def test_deterministic_crash_kills_task_and_run_is_diagnosed():
    plan = FaultPlan(crash_after_ops=(("t", 2),))
    engine, _ = make_engine(plan)

    def proc():
        yield Compute(1)
        yield Compute(1)
        yield Compute(1)  # never reached

    engine.spawn(proc(), name="t")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    err = excinfo.value
    assert err.report is not None
    assert err.report.crashed == ["t"]
    diag = err.report.by_task()["t"]
    assert diag.state == "crashed"
    assert "fault-injected crash after 2 ops" in diag.reason
    assert "never completed" in str(err)


def test_crashed_task_never_counts_as_completed():
    """Losing a processor must not let the run finish short: the engine
    keeps the crashed task live so the drain raises, loudly."""
    plan = FaultPlan(crash_after_ops=(("t", 1),))
    engine, _ = make_engine(plan)

    def proc():
        yield Compute(1)
        yield Compute(1)

    engine.spawn(proc(), name="t")
    with pytest.raises(DeadlockError):
        engine.run()
    assert engine.crashed == ["t"]


def test_memory_jitter_slows_reads():
    def run(plan):
        engine, _ = make_engine(plan)

        def proc():
            for _ in range(20):
                yield MemRead(("A", 0))

        engine.spawn(proc(), name="t")
        return engine.run(), engine.injector.counters["jittered_accesses"]

    clean, _ = run(FaultPlan(seed=1, update_drop=1.0))  # no jitter knob
    jittered, count = run(FaultPlan(seed=1, memory_jitter=(3, 3)))
    assert jittered == clean + 20 * 3
    assert count == 20


def test_dropped_update_leaves_value_and_returns_stale():
    plan = FaultPlan(seed=1, update_drop=1.0)
    engine, fabric = make_engine(plan)
    v = fabric.alloc(1, init=10)[0]
    got = []

    def proc():
        got.append((yield SyncUpdate(v, lambda x: x + 1)))

    engine.spawn(proc(), name="t")
    engine.run()
    assert fabric.value(v) == 10   # the commit vanished
    assert got == [10]             # issuer reads the stale value back
    assert engine.injector.counters["dropped_updates"] == 1


def test_duplicated_update_applies_twice():
    plan = FaultPlan(seed=1, update_dup=1.0)
    engine, fabric = make_engine(plan)
    v = fabric.alloc(1, init=10)[0]
    got = []

    def proc():
        got.append((yield SyncUpdate(v, lambda x: x + 1)))

    engine.spawn(proc(), name="t")
    engine.run()
    assert fabric.value(v) == 12   # replayed message: +1 landed twice
    assert got == [12]
    assert engine.injector.counters["duplicated_updates"] == 1


def test_lost_broadcast_starves_waiter_with_diagnosis():
    plan = FaultPlan(seed=1, broadcast_loss=1.0)
    engine, fabric = make_engine(plan)
    v = fabric.alloc(1, init=0)[0]

    def setter():
        yield Compute(5)
        yield SyncWrite(v, 1)  # broadcast never reaches the images

    def waiter():
        yield WaitUntil(v, lambda x: x >= 1, reason="release from setter")

    engine.spawn(setter(), name="setter")
    engine.spawn(waiter(), name="waiter")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    report = excinfo.value.report
    diag = report.by_task()["waiter"]
    assert diag.state == "parked"
    assert diag.waits_on == "setter"  # diagnosis still names the owner
    assert engine.injector.counters["lost_broadcasts"] == 1
    assert fabric.lost_broadcasts == 1


def test_broadcast_jitter_delays_but_delivers():
    plan = FaultPlan(seed=1, broadcast_jitter=(40, 40))
    engine, fabric = make_engine(plan)
    v = fabric.alloc(1, init=0)[0]
    woke = []

    def setter():
        yield SyncWrite(v, 1)

    def waiter():
        yield WaitUntil(v, lambda x: x >= 1)
        woke.append(engine.now)

    engine.spawn(setter(), name="s")
    engine.spawn(waiter(), name="w")
    engine.run()
    assert woke and woke[0] >= 40  # delivered, just late
    assert engine.injector.counters["delayed_broadcasts"] >= 1


# -- machine-level ----------------------------------------------------------

def test_machine_reports_fault_counters():
    loop = fig21_loop(n=16, cost=8)
    scheme = make_scheme("process-oriented")
    machine = Machine(MachineConfig(
        processors=4,
        fault_plan=FaultPlan(seed=2, memory_jitter=(0, 5))))
    result = machine.run(scheme.instrument(loop))
    scheme.instrument(loop).validate(result)  # jitter is always legal
    assert result.faults["jittered_accesses"] > 0
    assert result.fault_events > 0


def test_machine_run_is_deterministic_under_a_plan():
    def run():
        loop = fig21_loop(n=16, cost=8)
        scheme = make_scheme("process-oriented")
        machine = Machine(MachineConfig(
            processors=4,
            fault_plan=FaultPlan(seed=5, stall_prob=0.05,
                                 stall_cycles=(10, 60),
                                 memory_jitter=(0, 4))))
        result = machine.run(scheme.instrument(loop))
        return result.makespan, result.faults

    assert run() == run()


def test_hazard_report_counts_unclaimed_iterations():
    """A solo processor crashing early strands the rest of the loop; the
    enriched report says how many iterations were never handed out."""
    loop = fig21_loop(n=16, cost=8)
    machine = Machine(MachineConfig(
        processors=1,
        fault_plan=FaultPlan(crash_after_ops=(("cpu0", 30),))))
    with pytest.raises(DeadlockError) as excinfo:
        machine.run(make_scheme("process-oriented").instrument(loop))
    report = excinfo.value.report
    assert report.unclaimed_iterations > 0
    assert "iterations never claimed" in str(excinfo.value.report.format())
