"""Wait-for graphs, cycle extraction, and diagnosis of real engines."""

from __future__ import annotations

from repro.faults import WaitForGraph, diagnose
from repro.sim import (BroadcastSyncFabric, Compute, Engine, MemoryConfig,
                       SharedMemory, SyncWrite, WaitUntil)


def make_engine(fabric=None):
    fabric = fabric or BroadcastSyncFabric()
    return Engine(SharedMemory(MemoryConfig(latency=2)), fabric), fabric


# -- WaitForGraph -----------------------------------------------------------

def test_empty_graph_has_no_cycle():
    assert WaitForGraph().find_cycle() is None


def test_chain_has_no_cycle():
    graph = WaitForGraph()
    graph.add_edge("a", "b", 0, "w")
    graph.add_edge("b", "c", 1, "w")
    assert graph.find_cycle() is None


def test_two_node_cycle_found():
    graph = WaitForGraph()
    graph.add_edge("a", "b", 0, "w")
    graph.add_edge("b", "a", 1, "w")
    cycle = graph.find_cycle()
    assert cycle is not None
    assert sorted(cycle) == ["a", "b"]


def test_self_cycle_found():
    graph = WaitForGraph()
    graph.add_edge("a", "a", 0, "waits on its own counter")
    assert graph.find_cycle() == ["a"]


def test_cycle_off_a_tail_is_reported_without_the_tail():
    graph = WaitForGraph()
    graph.add_edge("entry", "b", 0, "w")   # tail into the ring
    graph.add_edge("b", "c", 1, "w")
    graph.add_edge("c", "b", 2, "w")
    cycle = graph.find_cycle()
    assert sorted(cycle) == ["b", "c"]
    assert "entry" not in cycle


def test_three_node_ring():
    graph = WaitForGraph()
    graph.add_edge("a", "b", 0, "w")
    graph.add_edge("b", "c", 1, "w")
    graph.add_edge("c", "a", 2, "w")
    assert sorted(graph.find_cycle()) == ["a", "b", "c"]


def test_edges_are_deterministically_ordered():
    graph = WaitForGraph()
    graph.add_edge("z", "a", 9, "w1")
    graph.add_edge("a", "z", 3, "w2")
    assert graph.edges() == [("a", "z", 3, "w2"), ("z", "a", 9, "w1")]


# -- diagnose() on a live engine -------------------------------------------

def test_diagnose_names_parked_task_and_last_writer():
    engine, fabric = make_engine()
    v = fabric.alloc(1, init=0)[0]

    def owner():
        yield Compute(5)
        yield SyncWrite(v, 1)  # not enough: waiter wants >= 2

    def waiter():
        yield WaitUntil(v, lambda x: x >= 2, reason="needs v>=2")

    engine.spawn(owner(), name="owner")
    engine.spawn(waiter(), name="waiter")
    try:
        engine.run()
    except Exception:
        pass
    report = diagnose(engine)
    diag = report.by_task()["waiter"]
    assert diag.state == "parked"
    assert diag.var == v
    assert diag.reason == "needs v>=2"
    assert diag.waits_on == "owner"
    assert diag.value == 1  # the committed-but-insufficient value
    assert report.cycle is None  # owner finished: a starve, not a cycle
    assert "last writer: owner" in report.format()


def test_diagnose_skips_completed_tasks():
    engine, _fabric = make_engine()

    def quick():
        yield Compute(1)

    engine.spawn(quick(), name="done")
    engine.run()
    report = diagnose(engine)
    assert report.tasks == []
    assert report.live_tasks == 0


def test_diagnose_reports_never_written_variable():
    engine, fabric = make_engine()
    v = fabric.alloc(1, init=0)[0]

    def waiter():
        yield WaitUntil(v, lambda x: x >= 1)

    engine.spawn(waiter(), name="w")
    try:
        engine.run()
    except Exception:
        pass
    report = diagnose(engine)
    assert report.by_task()["w"].waits_on is None
    assert ("w", "<never written>", v) in [
        (waiter, owner, var) for waiter, owner, var, _ in
        report.graph.edges()]
