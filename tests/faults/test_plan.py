"""FaultPlan validation, presets, and injector draw determinism."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultPlan, make_plan, plan_names


def test_default_plan_is_empty():
    assert FaultPlan().is_empty


def test_any_active_knob_makes_plan_non_empty():
    assert not FaultPlan(stall_prob=0.1).is_empty
    assert not FaultPlan(crash_prob=0.1).is_empty
    assert not FaultPlan(crash_after_ops=(("cpu0", 5),)).is_empty
    assert not FaultPlan(broadcast_loss=0.1).is_empty
    assert not FaultPlan(broadcast_jitter=(0, 3)).is_empty
    assert not FaultPlan(memory_jitter=(0, 3)).is_empty
    assert not FaultPlan(update_drop=0.1).is_empty
    assert not FaultPlan(update_dup=0.1).is_empty


@pytest.mark.parametrize("knob", ["stall_prob", "crash_prob",
                                  "broadcast_loss", "update_drop",
                                  "update_dup"])
def test_probabilities_validated(knob):
    with pytest.raises(ValueError):
        FaultPlan(**{knob: 1.5})
    with pytest.raises(ValueError):
        FaultPlan(**{knob: -0.1})


@pytest.mark.parametrize("knob", ["stall_cycles", "broadcast_jitter",
                                  "memory_jitter"])
def test_spans_validated(knob):
    with pytest.raises(ValueError):
        FaultPlan(**{knob: (5, 2)})   # high < low
    with pytest.raises(ValueError):
        FaultPlan(**{knob: (-1, 2)})  # negative low


def test_crash_after_ops_validated():
    with pytest.raises(ValueError):
        FaultPlan(crash_after_ops=(("cpu0", 0),))


def test_with_seed_keeps_knobs():
    plan = make_plan("stalls").with_seed(7)
    assert plan.seed == 7
    assert plan.name == "stalls"
    assert plan.stall_prob > 0


def test_presets_instantiate_and_are_non_empty():
    names = plan_names()
    assert len(names) >= 3  # the chaos sweep needs >= 3 fault mixes
    assert "none" not in names
    for name in names:
        plan = make_plan(name, seed=3)
        assert not plan.is_empty
        assert plan.name == name
        assert plan.seed == 3


def test_none_preset_is_the_empty_control():
    assert make_plan("none").is_empty


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown fault plan"):
        make_plan("meteor-strike")


def test_describe_mentions_active_knobs():
    text = make_plan("lossy-bus", seed=5).describe()
    assert "lossy-bus" in text
    assert "seed=5" in text
    assert "loss" in text
    assert FaultPlan().describe().endswith("no faults")


def test_injector_same_seed_same_draws():
    plan = make_plan("stalls", seed=11)

    def draws(injector):
        return [injector.stall_cycles("cpu0") for _ in range(200)]

    assert draws(FaultInjector(plan)) == draws(FaultInjector(plan))


def test_injector_different_seed_different_draws():
    plan = make_plan("stalls", seed=11)
    first = FaultInjector(plan)
    second = FaultInjector(plan.with_seed(12))
    a = [first.stall_cycles("cpu0") for _ in range(200)]
    b = [second.stall_cycles("cpu0") for _ in range(200)]
    assert a != b


def test_disabled_knobs_consume_no_randomness():
    """Enabling one fault class must not perturb another's draw stream:
    probes for zero-probability knobs never touch the RNG."""
    lossy = FaultPlan(seed=11, broadcast_loss=0.5)
    pristine = FaultInjector(lossy)
    reference = [pristine.broadcast_fate(0) for _ in range(100)]
    mixed = FaultInjector(lossy)
    for _ in range(100):
        # all of these are disabled in the plan -> must be free
        assert mixed.stall_cycles("cpu0") == 0
        assert not mixed.should_crash("cpu0", 10)
        assert mixed.memory_extra() == 0
        assert mixed.update_fate(0) == "ok"
    assert [mixed.broadcast_fate(0) for _ in range(100)] == reference


def test_deterministic_crash_target_fires_once():
    injector = FaultInjector(FaultPlan(crash_after_ops=(("cpu1", 5),)))
    assert not injector.should_crash("cpu1", 4)
    assert not injector.should_crash("cpu0", 99)
    assert injector.should_crash("cpu1", 5)
    assert not injector.should_crash("cpu1", 6)  # already fired
    assert injector.counters["crashes"] == 1


def test_counters_tally_injections():
    injector = FaultInjector(FaultPlan(seed=1, stall_prob=1.0,
                                       stall_cycles=(5, 5),
                                       memory_jitter=(2, 4)))
    total = sum(injector.stall_cycles("cpu0") for _ in range(10))
    assert injector.counters["injected_stalls"] == 10
    assert injector.counters["injected_stall_cycles"] == total == 50
    for _ in range(10):
        assert injector.memory_extra() >= 2
    assert injector.counters["jittered_accesses"] == 10
    assert injector.events == 20  # cycle sums excluded
