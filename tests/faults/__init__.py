"""Fault injection, hazard diagnosis and the chaos harness."""
