"""Differential testing: the dependence solver vs brute-force collision
enumeration.

For randomly generated affine references (including strided and
strip-mined shapes) the analyzer's reported distances must match the
ground truth obtained by enumerating every iteration pair and checking
element collisions directly.  "Unknown" results are allowed only to be
*conservative* (a superset): every true collision distance must be
covered by either an exact arc or an unknown-distance arc between the
same statements.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.depend.analysis import analyze
from repro.depend.model import AffineExpr, ArrayRef, Loop, Statement


def brute_force_collisions(loop):
    """Ground truth: {(src, dst, kind-pair) -> set of distance vectors}.

    A collision from access (stmt_a at i) to (stmt_b at j), i before j in
    the sequential interleaving (or same iteration with a at an earlier
    or equal slot), touching the same element.
    """
    accesses = []  # (iteration order key, index, sid, kind, element)
    space = loop.iteration_space()
    for order, index in enumerate(space):
        for position, stmt in enumerate(loop.body):
            for ref in stmt.reads:
                accesses.append((order, position, 0, index, stmt.sid,
                                 "R", loop.address_of(ref, index)))
            for ref in stmt.writes:
                accesses.append((order, position, 1, index, stmt.sid,
                                 "W", loop.address_of(ref, index)))

    by_element = defaultdict(list)
    for access in accesses:
        by_element[access[-1]].append(access)

    truth = defaultdict(set)
    for element, hits in by_element.items():
        hits.sort()  # sequential order: iteration, statement, R-then-W
        for a_pos in range(len(hits)):
            for b_pos in range(a_pos + 1, len(hits)):
                a = hits[a_pos]
                b = hits[b_pos]
                if a[5] == "R" and b[5] == "R":
                    continue
                if a[3] == b[3] and a[4] == b[4] and a[5] == b[5] == "W":
                    # two writes by one statement instance: ordered by
                    # the statement itself, not a dependence arc
                    continue
                delta = tuple(jb - ja for ja, jb in zip(a[3], b[3]))
                truth[(a[4], b[4], a[5], b[5])].add(delta)
    return truth


@st.composite
def strided_loops(draw):
    """1-D loops with strided affine refs: coef in 1..3, offset -4..4."""
    n = draw(st.integers(min_value=4, max_value=10))
    n_statements = draw(st.integers(min_value=1, max_value=3))
    body = []
    for position in range(n_statements):
        refs = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            coef = draw(st.integers(min_value=1, max_value=3))
            offset = draw(st.integers(min_value=-4, max_value=4))
            refs.append(ArrayRef("A", (AffineExpr((coef,), offset),)))
        split = draw(st.integers(min_value=0, max_value=len(refs)))
        body.append(Statement(f"S{position}",
                              writes=tuple(refs[:split]),
                              reads=tuple(refs[split:])))
    return Loop("strided", bounds=((1, n),), body=body)


@st.composite
def two_level_loops(draw):
    """2-deep loops with refs like A[w*s + o + c] (strip-mine shaped)."""
    n_outer = draw(st.integers(min_value=2, max_value=5))
    n_inner = draw(st.integers(min_value=2, max_value=4))
    body = []
    for position in range(draw(st.integers(min_value=1, max_value=2))):
        refs = []
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            c_outer = draw(st.sampled_from([n_inner, 2, 1]))
            c_inner = draw(st.sampled_from([0, 1]))
            offset = draw(st.integers(min_value=-3, max_value=3))
            refs.append(ArrayRef(
                "A", (AffineExpr((c_outer, c_inner), offset),)))
        split = draw(st.integers(min_value=0, max_value=len(refs)))
        body.append(Statement(f"S{position}",
                              writes=tuple(refs[:split]),
                              reads=tuple(refs[split:])))
    return Loop("two-level", bounds=((0, n_outer - 1), (0, n_inner - 1)),
                body=body)


def check_against_truth(loop):
    truth = brute_force_collisions(loop)
    reported = defaultdict(set)
    unknown_pairs = set()
    kinds = {"flow": ("W", "R"), "anti": ("R", "W"),
             "output": ("W", "W")}
    for dep in analyze(loop):
        src_kind, dst_kind = kinds[dep.dep_type]
        key = (dep.src, dep.dst, src_kind, dst_kind)
        if dep.distance is None:
            unknown_pairs.add(key)
        else:
            reported[key].add(dep.distance)

    for key, true_deltas in truth.items():
        if key in unknown_pairs:
            continue  # conservatively covered
        missing = true_deltas - reported[key]
        assert not missing, (
            f"analyzer missed collisions {missing} for {key}; "
            f"reported {reported[key]}")

    # and no phantom arcs: every exact reported distance must be real
    for key, deltas in reported.items():
        phantom = deltas - truth.get(key, set())
        assert not phantom, (
            f"analyzer invented collisions {phantom} for {key}")


@settings(max_examples=60, deadline=None)
@given(loop=strided_loops())
def test_strided_loops_match_brute_force(loop):
    check_against_truth(loop)


@settings(max_examples=40, deadline=None)
@given(loop=two_level_loops())
def test_two_level_loops_match_brute_force(loop):
    check_against_truth(loop)


def test_strip_mine_shape_exact():
    """The canonical strip-mined pair A[3s+o+3] vs A[3s+o+1]."""
    body = [
        Statement("W", writes=(ArrayRef("A", (AffineExpr((3, 1), 3),)),)),
        Statement("R", reads=(ArrayRef("A", (AffineExpr((3, 1), 1),)),)),
    ]
    loop = Loop("strip", bounds=((0, 3), (0, 2)), body=body)
    check_against_truth(loop)
    flows = {d.distance for d in analyze(loop)
             if d.src == "W" and d.dst == "R" and d.distance}
    assert flows == {(0, 2), (1, -1)}
