"""Dependence testing: the paper's example and the tester's edge cases."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.depend.analysis import Dependence, analyze
from repro.depend.model import (AffineExpr, ArrayRef, Loop, Statement,
                                ref1)


def arcs_of(loop):
    return {(d.src, d.dst, d.dep_type, d.distance) for d in analyze(loop)}


def test_fig21_dependences_match_the_paper(fig21):
    """Fig. 2.1(b): flow S1->S2 (2), S1->S3 (1), S4->S5 (1); anti
    S2->S4 (1), S3->S4 (2); output S1->S4 (3); plus flow S1->S5 (4)
    which the paper's figure elides (it is covered)."""
    got = arcs_of(fig21)
    assert ("S1", "S2", "flow", (2,)) in got
    assert ("S1", "S3", "flow", (1,)) in got
    assert ("S4", "S5", "flow", (1,)) in got
    assert ("S2", "S4", "anti", (1,)) in got
    assert ("S3", "S4", "anti", (2,)) in got
    assert ("S1", "S4", "output", (3,)) in got
    assert ("S1", "S5", "flow", (4,)) in got
    assert len(got) == 7


def test_example2_distance_vectors(nested):
    """Fig. 5.2: A flow at (0,1); B flow at (1,1)."""
    got = arcs_of(nested)
    assert ("S1", "S2", "flow", (0, 1)) in got
    assert ("S2", "S3", "flow", (1, 1)) in got


def test_flow_anti_output_classification():
    body = [
        Statement("W1", writes=(ref1("A", 1, 1),)),
        Statement("R1", reads=(ref1("A", 1, 0),)),
        Statement("W2", writes=(ref1("A", 1, 0),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    got = arcs_of(loop)
    assert ("W1", "R1", "flow", (1,)) in got
    assert ("R1", "W2", "anti", (0,)) in got     # same iteration
    assert ("W1", "W2", "output", (1,)) in got


def test_no_dependence_between_distinct_arrays():
    body = [
        Statement("S1", writes=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ref1("B", 1, 0),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    assert arcs_of(loop) == set()


def test_read_read_pairs_ignored():
    body = [
        Statement("S1", reads=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ref1("A", 1, 1),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    assert arcs_of(loop) == set()


def test_non_integer_gap_means_no_dependence():
    """A[2i] vs A[2i+1]: even/odd elements never collide."""
    body = [
        Statement("S1", writes=(ArrayRef("A", (AffineExpr((2,), 0),)),)),
        Statement("S2", reads=(ArrayRef("A", (AffineExpr((2,), 1),)),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    assert arcs_of(loop) == set()


def test_even_gap_with_stride_two():
    """A[2i] written, A[2i-4] read: distance 2."""
    body = [
        Statement("S1", writes=(ArrayRef("A", (AffineExpr((2,), 0),)),)),
        Statement("S2", reads=(ArrayRef("A", (AffineExpr((2,), -4),)),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    assert ("S1", "S2", "flow", (2,)) in arcs_of(loop)


def test_coefficient_mismatch_reported_unknown():
    """A[i] vs A[2i]: collisions exist but at varying distances."""
    body = [
        Statement("S1", writes=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ArrayRef("A", (AffineExpr((2,), 0),)),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    deps = analyze(loop)
    assert any(d.distance is None for d in deps)


def test_loop_invariant_element_unknown():
    """A[5] written every iteration: output dependence, unconstrained."""
    body = [Statement("S1", writes=(ArrayRef("A", (AffineExpr((0,), 5),)),))]
    loop = Loop("t", bounds=((1, 10),), body=body)
    deps = analyze(loop)
    assert any(d.distance is None and d.dep_type == "output" for d in deps)


def test_distance_beyond_bounds_not_reported():
    """Distance 5 in a 3-iteration loop cannot be realized."""
    body = [
        Statement("S1", writes=(ref1("A", 1, 5),)),
        Statement("S2", reads=(ref1("A", 1, 0),)),
    ]
    loop = Loop("t", bounds=((1, 3),), body=body)
    assert arcs_of(loop) == set()


def test_same_iteration_statement_order_decides_direction():
    """S1 writes A[i], S2 reads A[i]: flow S1->S2 at distance 0."""
    body = [
        Statement("S1", writes=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ref1("A", 1, 0),)),
    ]
    loop = Loop("t", bounds=((1, 5),), body=body)
    got = arcs_of(loop)
    assert ("S1", "S2", "flow", (0,)) in got
    assert ("S2", "S1", "anti", (0,)) not in got


def test_within_statement_read_then_write():
    """A[i] = A[i]: the read precedes the write, no arc either way."""
    body = [Statement("S1", writes=(ref1("A", 1, 0),),
                      reads=(ref1("A", 1, 0),))]
    loop = Loop("t", bounds=((1, 5),), body=body)
    anti = [(d.src, d.dst) for d in analyze(loop) if d.distance == (0,)]
    assert ("S1", "S1") in anti or anti == []  # read->write same stmt ok
    # and no flow at distance 0 from the write back to the read
    flows = [d for d in analyze(loop)
             if d.dep_type == "flow" and d.distance == (0,)]
    assert flows == []


def test_recurrence_self_dependence():
    """A[i] = A[i-1]: exactly one arc, the flow S->S at distance 1 (the
    write of element e always precedes its read, so no anti arc)."""
    body = [Statement("S", writes=(ref1("A", 1, 0),),
                      reads=(ref1("A", 1, -1),))]
    loop = Loop("t", bounds=((1, 10),), body=body)
    got = arcs_of(loop)
    assert got == {("S", "S", "flow", (1,))}


def test_loop_carried_flag():
    dep = Dependence("a", "b", "flow", (0, 1), ref1("A", 2), ref1("A", 2))
    intra = Dependence("a", "b", "flow", (0, 0), ref1("A", 2),
                       ref1("A", 2))
    unknown = Dependence("a", "b", "flow", None, ref1("A", 2),
                         ref1("A", 2))
    assert dep.loop_carried
    assert not intra.loop_carried
    assert unknown.loop_carried


def test_str_rendering():
    dep = Dependence("S1", "S2", "flow", (2,), ref1("A", 1, 3),
                     ref1("A", 1, 1))
    assert "S1->S2" in str(dep)
    assert "d=(2)" in str(dep)


@given(st.integers(min_value=-4, max_value=4),
       st.integers(min_value=-4, max_value=4),
       st.integers(min_value=10, max_value=20))
def test_computed_distance_is_offset_difference(write_offset, read_offset,
                                                n):
    """For A[i+a] written and A[i+b] read, the distance is |a-b| with the
    direction from the earlier access ("easily computed by subtracting
    the subscript expressions")."""
    body = [
        Statement("S1", writes=(ref1("A", 1, write_offset),)),
        Statement("S2", reads=(ref1("A", 1, read_offset),)),
    ]
    loop = Loop("t", bounds=((1, n),), body=body)
    gap = write_offset - read_offset
    got = arcs_of(loop)
    if gap > 0:
        assert ("S1", "S2", "flow", (gap,)) in got
    elif gap < 0:
        assert ("S2", "S1", "anti", (-gap,)) in got
    else:
        assert ("S1", "S2", "flow", (0,)) in got
