"""Loop IR: expressions, references, iteration space, sequential exec."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.depend.model import (AffineExpr, Loop, Statement,
                                index_expr, ref1)
from repro.sim.validate import mix


def test_affine_eval():
    expr = AffineExpr((2, -1), 5)  # 2i - j + 5
    assert expr.eval((3, 4)) == 2 * 3 - 4 + 5


def test_affine_arity_mismatch():
    with pytest.raises(ValueError):
        AffineExpr((1,), 0).eval((1, 2))


def test_affine_str():
    assert str(index_expr(0, 1, 3)) == "i+3"
    assert str(index_expr(0, 1, -1)) == "i-1"
    assert str(index_expr(1, 2)) == "j"
    assert str(AffineExpr((0,), 7)) == "7"


def test_index_expr_and_ref1():
    ref = ref1("A", 2, offset=3, dim=1)
    assert ref.element((10, 20)) == (23,)
    assert str(ref) == "A[j+3]"


def test_statement_cost_constant_and_callable():
    fixed = Statement("S", cost=7)
    varying = Statement("T", cost=lambda index: index[0] * 2)
    assert fixed.cost_at((5,)) == 7
    assert varying.cost_at((5,)) == 10


def test_statement_guard():
    stmt = Statement("S", guard=lambda index: index[0] % 2 == 0)
    assert stmt.executes_at((4,))
    assert not stmt.executes_at((5,))
    assert Statement("T").executes_at((1,))


def test_statement_refs_order():
    stmt = Statement("S", writes=(ref1("A", 1),), reads=(ref1("B", 1),))
    assert [(kind, ref.array) for kind, ref in stmt.refs()] == [
        ("W", "A"), ("R", "B")]


def test_loop_rejects_bad_bounds_and_duplicate_sids():
    with pytest.raises(ValueError):
        Loop("bad", bounds=((5, 1),), body=[Statement("S")])
    with pytest.raises(ValueError):
        Loop("dup", bounds=((1, 2),),
             body=[Statement("S"), Statement("S")])


def test_iteration_space_lexicographic():
    loop = Loop("l", bounds=((1, 2), (3, 4)), body=[Statement("S")])
    assert loop.iteration_space() == [(1, 3), (1, 4), (2, 3), (2, 4)]
    assert loop.n_iterations == 4
    assert loop.extents == (2, 2)
    assert loop.depth == 2


def test_lpid_matches_paper_formula():
    """Example 2: lpid = (i-1)*M + j for 1-based (i, j)."""
    m = 5
    loop = Loop("l", bounds=((1, 4), (1, m)), body=[Statement("S")])
    for i in range(1, 5):
        for j in range(1, m + 1):
            assert loop.lpid((i, j)) == (i - 1) * m + j


@given(st.integers(min_value=1, max_value=4),
       st.data())
def test_lpid_roundtrip(depth, data):
    bounds = tuple(
        (lo, lo + data.draw(st.integers(min_value=0, max_value=4)))
        for lo in (data.draw(st.integers(min_value=-3, max_value=3))
                   for _ in range(depth)))
    loop = Loop("l", bounds=bounds, body=[Statement("S")])
    space = loop.iteration_space()
    lpids = [loop.lpid(index) for index in space]
    assert lpids == list(range(1, len(space) + 1))  # dense, 1-based, ordered
    for index in space:
        assert loop.index_of_lpid(loop.lpid(index)) == index


def test_in_bounds():
    loop = Loop("l", bounds=((1, 3), (2, 4)), body=[Statement("S")])
    assert loop.in_bounds((1, 2))
    assert loop.in_bounds((3, 4))
    assert not loop.in_bounds((0, 2))
    assert not loop.in_bounds((1, 5))


def test_flatten_1d_default_and_shaped():
    loop = Loop("l", bounds=((1, 2),), body=[Statement("S")],
                array_shapes={"B": (3, 4)})
    assert loop.flatten("A", (7,)) == ("A", 7)
    assert loop.flatten("B", (2, 3)) == ("B", 2 * 4 + 3)
    with pytest.raises(ValueError):
        loop.flatten("A", (1, 2))     # undeclared shape, 2 subscripts
    with pytest.raises(ValueError):
        loop.flatten("B", (1,))       # declared 2-D, 1 subscript


def test_statement_lookup_and_position():
    loop = Loop("l", bounds=((1, 2),),
                body=[Statement("S1"), Statement("S2")])
    assert loop.statement("S2").sid == "S2"
    assert loop.position("S1") == 0
    with pytest.raises(KeyError):
        loop.statement("S9")
    with pytest.raises(KeyError):
        loop.position("S9")


def test_sequential_execution_semantics():
    """A[i] = A[i-1] chains values exactly like a hand evaluation."""
    body = [Statement("S", writes=(ref1("A", 1, 0),),
                      reads=(ref1("A", 1, -1),))]
    loop = Loop("chain", bounds=((1, 3),), body=body)
    final, reads = loop.execute_sequential()
    v1 = mix("S", 1, [None])
    v2 = mix("S", 2, [v1])
    v3 = mix("S", 3, [v2])
    assert final[("A", 1)] == v1
    assert final[("A", 2)] == v2
    assert final[("A", 3)] == v3
    assert reads[("S", 2)] == [v1]


def test_sequential_execution_respects_guards():
    body = [Statement("S", writes=(ref1("A", 1, 0),),
                      guard=lambda index: index[0] != 2)]
    loop = Loop("g", bounds=((1, 3),), body=body)
    final, reads = loop.execute_sequential()
    assert ("A", 2) not in final
    assert ("S", 2) not in reads
    assert ("A", 1) in final and ("A", 3) in final


def test_sequential_execution_uses_initial_memory():
    body = [Statement("S", writes=(ref1("B", 1, 0),),
                      reads=(ref1("A", 1, 0),))]
    loop = Loop("init", bounds=((1, 1),), body=body)
    final, _ = loop.execute_sequential({("A", 1): 77})
    assert final[("B", 1)] == mix("S", 1, [77])


def test_serial_cycles():
    body = [Statement("S", writes=(ref1("A", 1, 0),), cost=5,
                      reads=(ref1("A", 1, -1),))]
    loop = Loop("c", bounds=((1, 4),), body=body)
    assert loop.serial_cycles() == 4 * 5
    assert loop.serial_cycles(per_access=3) == 4 * (5 + 2 * 3)


def test_serial_cycles_skips_guarded():
    body = [Statement("S", cost=5, guard=lambda index: index[0] == 1)]
    loop = Loop("g", bounds=((1, 4),), body=body)
    assert loop.serial_cycles() == 5
