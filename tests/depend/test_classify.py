"""DOALL / DOACROSS / serial classification."""

from __future__ import annotations

from repro.depend.classify import DOACROSS, DOALL, SERIAL, classify
from repro.depend.model import AffineExpr, ArrayRef, Loop, Statement, ref1


def test_doall(doall):
    outcome = classify(doall)
    assert outcome.label == DOALL
    assert outcome.carried_arcs == 0


def test_doacross(fig21):
    outcome = classify(fig21)
    assert outcome.label == DOACROSS
    assert outcome.carried_arcs == 7


def test_recurrence_is_doacross(recurrence):
    assert classify(recurrence).label == DOACROSS


def test_serial_on_unknown_distance():
    body = [
        Statement("S1", writes=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ArrayRef("A", (AffineExpr((2,), 0),)),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    outcome = classify(loop)
    assert outcome.label == SERIAL
    assert "not provably constant" in outcome.reason


def test_intra_iteration_only_is_doall():
    """S1 writes A[i], S2 reads A[i]: dependence, but not loop-carried."""
    body = [
        Statement("S1", writes=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ref1("A", 1, 0),)),
    ]
    loop = Loop("t", bounds=((1, 10),), body=body)
    assert classify(loop).label == DOALL


def test_nested_is_doacross(nested):
    assert classify(nested).label == DOACROSS
