"""Loop transformations: legality, index remapping, wavefronting."""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.apps.kernels import example2_loop, relaxation_loop
from repro.depend import analyze
from repro.depend.model import Loop, Statement
from repro.depend.transform import (IllegalTransform, inner_loop_parallel,
                                    interchange, skew, wavefront)


def element_access_order(loop: Loop):
    """Per-element sequence of (sid, kind) in sequential order.

    Two loops with identical per-element access orders compute the same
    values for any statement semantics: the gold standard for judging a
    reordering transformation.
    """
    orders = defaultdict(list)
    for index in loop.iteration_space():
        for stmt in loop.body:
            if not stmt.executes_at(index):
                continue
            for ref in stmt.reads:
                orders[loop.address_of(ref, index)].append((stmt.sid, "R"))
            for ref in stmt.writes:
                orders[loop.address_of(ref, index)].append((stmt.sid, "W"))
    return dict(orders)


# ----------------------------------------------------------------------
# interchange
# ----------------------------------------------------------------------

def test_interchange_legal_for_relaxation():
    """(1,0) and (0,1) survive swapping: (0,1) and (1,0), both lex+."""
    loop = relaxation_loop(n=5)
    swapped = interchange(loop, [1, 0])
    assert swapped.bounds == (loop.bounds[1], loop.bounds[0])
    assert element_access_order(loop) == element_access_order(swapped)


def test_interchange_illegal_when_vector_flips():
    """Distance (1,-1) becomes (-1,1) after swap: must be refused."""
    from repro.depend.model import ArrayRef, index_expr
    a_ij = ArrayRef("A", (index_expr(0, 2), index_expr(1, 2)))
    a_im1jp1 = ArrayRef("A", (index_expr(0, 2, -1), index_expr(1, 2, 1)))
    body = [Statement("S", writes=(a_ij,), reads=(a_im1jp1,))]
    loop = Loop("flip", bounds=((1, 5), (1, 5)), body=body,
                array_shapes={"A": (6, 7)})
    carried = [d.distance for d in analyze(loop) if d.loop_carried]
    assert (1, -1) in carried
    with pytest.raises(IllegalTransform):
        interchange(loop, [1, 0])


def test_interchange_validates_permutation():
    loop = relaxation_loop(n=4)
    with pytest.raises(ValueError):
        interchange(loop, [0, 0])


def test_interchange_composes_guards():
    from repro.depend.model import ArrayRef, index_expr
    a_ij = ArrayRef("A", (index_expr(0, 2), index_expr(1, 2)))
    body = [Statement("S", writes=(a_ij,),
                      guard=lambda index: index[0] != 2)]
    loop = Loop("g", bounds=((1, 3), (1, 2)), body=body,
                array_shapes={"A": (4, 3)})
    swapped = interchange(loop, [1, 0])
    # in the swapped space the guard tests the *second* component
    assert swapped.body[0].executes_at((1, 1))
    assert not swapped.body[0].executes_at((1, 2))


def test_interchange_composes_costs():
    from repro.depend.model import ArrayRef, index_expr
    a_ij = ArrayRef("A", (index_expr(0, 2), index_expr(1, 2)))
    body = [Statement("S", writes=(a_ij,),
                      cost=lambda index: 100 * index[0] + index[1])]
    loop = Loop("c", bounds=((1, 3), (1, 2)), body=body,
                array_shapes={"A": (4, 3)})
    swapped = interchange(loop, [1, 0])
    # new index (j, i) must be charged as old (i, j)
    assert swapped.body[0].cost_at((2, 3)) == 100 * 3 + 2


# ----------------------------------------------------------------------
# skew
# ----------------------------------------------------------------------

def test_skew_preserves_element_access_order():
    loop = relaxation_loop(n=5)
    skewed = skew(loop, target=1, source=0, factor=1)
    assert element_access_order(loop) == element_access_order(skewed)


def test_skew_transforms_distance_vectors():
    loop = relaxation_loop(n=5)
    skewed = skew(loop, target=1, source=0, factor=1)
    distances = sorted({d.distance for d in analyze(skewed)
                        if d.loop_carried})
    assert distances == [(0, 1), (1, 1)]  # (1,0)->(1,1), (0,1)->(0,1)


def test_skew_guards_outside_region():
    loop = relaxation_loop(n=4)     # i, j in 2..4
    skewed = skew(loop)             # j' = i + j in 4..8
    stmt = skewed.body[0]
    assert stmt.executes_at((2, 4))      # original (2, 2)
    assert not stmt.executes_at((2, 7))  # original (2, 5): outside
    assert stmt.executes_at((3, 7))      # original (3, 4)


def test_skew_validation():
    loop = relaxation_loop(n=4)
    with pytest.raises(ValueError):
        skew(loop, target=0, source=1)
    with pytest.raises(ValueError):
        skew(loop, factor=0)


# ----------------------------------------------------------------------
# wavefront = skew + interchange
# ----------------------------------------------------------------------

def test_wavefront_makes_inner_loop_parallel():
    loop = relaxation_loop(n=6)
    assert not inner_loop_parallel(loop)
    transformed = wavefront(loop)
    assert inner_loop_parallel(transformed)
    # the outer loop now walks anti-diagonals i+j = 4 .. 2N
    assert transformed.bounds[0] == (4, 12)


def test_wavefront_preserves_element_access_order_per_element():
    loop = relaxation_loop(n=5)
    transformed = wavefront(loop)
    assert element_access_order(loop) == element_access_order(transformed)


def test_wavefront_requires_depth_two():
    from repro.apps.kernels import fig21_loop
    with pytest.raises(ValueError):
        wavefront(fig21_loop(8))


def test_wavefront_of_example2():
    loop = example2_loop(n=5, m=4)
    transformed = wavefront(loop)
    assert inner_loop_parallel(transformed)
    assert element_access_order(loop) == element_access_order(transformed)


def test_transformed_loop_simulates_under_a_scheme():
    """The wavefronted nest runs through the ordinary scheme machinery
    and validates against its own sequential semantics."""
    from repro.schemes import make_scheme
    from repro.sim import Machine, MachineConfig
    transformed = wavefront(relaxation_loop(n=5))
    machine = Machine(MachineConfig(processors=4))
    result = make_scheme("process-oriented").run(transformed,
                                                 machine=machine)
    assert result.makespan > 0


# ----------------------------------------------------------------------
# strip mining (the grouping of Fig 5.1(c))
# ----------------------------------------------------------------------

def strip_cases():
    from repro.apps.kernels import fig21_loop
    return [(fig21_loop(n=10), 0, 3), (fig21_loop(n=12), 0, 4),
            (relaxation_loop(n=5), 1, 2)]


@pytest.mark.parametrize("loop, level, width", strip_cases())
def test_strip_mine_preserves_access_order(loop, level, width):
    from repro.depend.transform import strip_mine
    stripped = strip_mine(loop, level=level, width=width)
    assert stripped.depth == loop.depth + 1
    assert element_access_order(loop) == element_access_order(stripped)


def test_strip_mine_multi_distance_arcs_coalesce():
    """Strip-mined dependences appear at several vectors -- (0,+2) inside
    a strip, (+1,-1) across strips -- but all coalesce to the original
    linear distance, so the sync plan is unchanged."""
    from repro.apps.kernels import fig21_loop
    from repro.depend.graph import DependenceGraph
    from repro.depend.transform import strip_mine
    loop = fig21_loop(n=10)
    stripped = strip_mine(loop, level=0, width=3)
    s12 = {d.distance for d in DependenceGraph(stripped).dependences
           if (d.src, d.dst) == ("S1", "S2")}
    assert s12 == {(0, 2), (1, -1)}
    original = {(a.src, a.dst, a.distance)
                for a in DependenceGraph(loop).pruned_sync_arcs()}
    stripped_arcs = {(a.src, a.dst, a.distance)
                     for a in DependenceGraph(stripped).pruned_sync_arcs()}
    assert original == stripped_arcs


def test_strip_mine_guards_tail():
    from repro.apps.kernels import fig21_loop
    from repro.depend.transform import strip_mine
    loop = fig21_loop(n=10)           # 10 iterations, strips of 3
    stripped = strip_mine(loop, 0, 3)  # last strip holds only 1
    stmt = stripped.body[0]
    assert stmt.executes_at((3, 0))    # original i = 10
    assert not stmt.executes_at((3, 1))
    assert not stmt.executes_at((3, 2))


def test_strip_mine_validation():
    from repro.apps.kernels import fig21_loop
    from repro.depend.transform import strip_mine
    loop = fig21_loop(n=6)
    with pytest.raises(ValueError):
        strip_mine(loop, level=2, width=2)
    with pytest.raises(ValueError):
        strip_mine(loop, level=0, width=0)


def test_strip_mined_loop_simulates_under_all_schemes():
    from repro.apps.kernels import fig21_loop
    from repro.depend.transform import strip_mine
    from repro.schemes import make_scheme, scheme_names
    from repro.sim import Machine, MachineConfig
    stripped = strip_mine(fig21_loop(n=9, cost=4), 0, 3)
    machine = Machine(MachineConfig(processors=4))
    for name in scheme_names():
        result = make_scheme(name).run(stripped, machine=machine)
        assert result.makespan > 0
