"""Dependence-tester edge cases the static verifier leans on.

The verifier's soundness rests on three properties of
:mod:`repro.depend.analysis` exercised here: equal non-unit
coefficients still yield exact constant distances, coefficient
mismatches degrade to ``distance=None`` (and the verifier then refuses
to certify anything rather than treating the arc as covered), and
multi-dimensional references produce full distance vectors.
"""

from __future__ import annotations

from repro.analyze import verify
from repro.depend.analysis import analyze
from repro.depend.graph import DependenceGraph
from repro.depend.model import (ArrayRef, Loop, Statement, index_expr,
                                ref1)
from repro.schemes.registry import make_scheme


def arcs_of(loop):
    return {(d.src, d.dst, d.dep_type, d.distance) for d in analyze(loop)}


def stride2(offset):
    """The reference ``A[2i + offset]``."""
    return ArrayRef("A", (index_expr(0, 1, offset, 2),))


def test_equal_nonunit_coefficients_give_exact_distance():
    """A[2i+2] -> A[2i]: gap 2 over coefficient 2 is distance 1."""
    loop = Loop("stride", bounds=((1, 12),), body=[
        Statement("S1", writes=(stride2(2),)),
        Statement("S2", reads=(stride2(0),)),
    ])
    assert ("S1", "S2", "flow", (1,)) in arcs_of(loop)
    graph = DependenceGraph(loop)
    assert not graph.has_unknown_distance
    report = verify(loop, make_scheme("statement-oriented"), graph=graph,
                    app="stride")
    assert report.clean


def test_odd_gap_under_coefficient_two_is_independent():
    """A[2i+1] and A[2i] never collide: no arc, loop is doall."""
    loop = Loop("odd-gap", bounds=((1, 12),), body=[
        Statement("S1", writes=(stride2(1),)),
        Statement("S2", reads=(stride2(0),)),
    ])
    assert arcs_of(loop) == set()


def test_coefficient_mismatch_is_conservative_not_covered():
    """A[2i] vs A[i] has no constant distance: the tester reports
    ``distance=None`` and the verifier must answer *requires serial*,
    never 'covered'."""
    loop = Loop("mixed", bounds=((1, 12),), body=[
        Statement("S1", writes=(stride2(0),)),
        Statement("S2", reads=(ref1("A", 1, 0),)),
    ])
    deps = analyze(loop)
    assert any(d.distance is None for d in deps)
    assert all(d.loop_carried for d in deps if d.distance is None)
    graph = DependenceGraph(loop)
    assert graph.has_unknown_distance
    report = verify(loop, make_scheme("statement-oriented"), graph=graph,
                    app="mixed")
    assert report.requires_serial
    assert not report.clean
    assert report.races == [] and report.deadlocks == []


def test_multidimensional_distance_vector():
    """B[i-1, j-1] read after B[i, j] write: distance (1, 1)."""
    write = ArrayRef("B", (index_expr(0, 2, 0), index_expr(1, 2, 0)))
    read = ArrayRef("B", (index_expr(0, 2, -1), index_expr(1, 2, -1)))
    loop = Loop("grid", bounds=((1, 6), (1, 5)), body=[
        Statement("S1", writes=(write,)),
        Statement("S2", reads=(read,)),
    ], array_shapes={"B": (8, 8)})
    assert ("S1", "S2", "flow", (1, 1)) in arcs_of(loop)
    report = verify(loop, make_scheme("reference-based"), app="grid")
    assert report.clean


def test_mixed_dimension_mismatch_within_one_array():
    """Same array, one subscript pair solvable and one not: the whole
    pair must fall back to unknown, and the verifier to serial."""
    solvable = ArrayRef("B", (index_expr(0, 2, 1), index_expr(1, 2, 0)))
    unsolvable = ArrayRef("B", (index_expr(0, 2, 0, 2),
                                index_expr(1, 2, 0)))
    loop = Loop("half-known", bounds=((1, 6), (1, 5)), body=[
        Statement("S1", writes=(solvable,)),
        Statement("S2", reads=(unsolvable,)),
    ], array_shapes={"B": (16, 8)})
    graph = DependenceGraph(loop)
    if not graph.dependences:
        # provably independent is also sound; nothing more to check
        return
    assert graph.has_unknown_distance
    report = verify(loop, make_scheme("reference-based"), graph=graph,
                    app="half-known")
    assert report.requires_serial
