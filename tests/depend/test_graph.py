"""Dependence graph: sync arcs, linearization, coverage pruning."""

from __future__ import annotations

import pytest

from repro.depend.analysis import Dependence
from repro.depend.graph import DependenceGraph, linear_distance
from repro.depend.model import Loop, Statement, ref1


def arc_set(arcs):
    return {(a.src, a.dst, a.distance) for a in arcs}


def test_sync_arcs_fig21(fig21):
    graph = DependenceGraph(fig21)
    assert arc_set(graph.sync_arcs()) == {
        ("S1", "S2", 2), ("S1", "S3", 1), ("S1", "S4", 3), ("S1", "S5", 4),
        ("S2", "S4", 1), ("S3", "S4", 2), ("S4", "S5", 1)}


def test_pruning_exact_covers_s1_s4(fig21):
    """The paper: "by enforcing dependences S1->S3 and S3->S4, the
    dependence S1->S4 can be covered"; S1->S5 falls the same way
    (S1->S3->S4->S5 sums to 4)."""
    graph = DependenceGraph(fig21)
    pruned = arc_set(graph.pruned_sync_arcs(mode="exact"))
    assert pruned == {("S1", "S2", 2), ("S1", "S3", 1), ("S2", "S4", 1),
                      ("S3", "S4", 2), ("S4", "S5", 1)}


def test_pruning_monotonic_at_least_as_aggressive(fig21):
    graph = DependenceGraph(fig21)
    exact = arc_set(graph.pruned_sync_arcs(mode="exact"))
    monotonic = arc_set(graph.pruned_sync_arcs(mode="monotonic"))
    assert monotonic <= exact


def test_pruning_monotonic_uses_smaller_distance_paths():
    """Arc (a, c, 5) with a path a->b->c of distance 2 is covered only in
    monotonic mode (a later source instance implies earlier ones)."""
    body = [
        Statement("A", writes=(ref1("X", 1, 5), ref1("Z", 1, 1))),
        Statement("B", writes=(ref1("Y", 1, 1),), reads=(ref1("Z", 1, 0),)),
        Statement("C", reads=(ref1("X", 1, 0), ref1("Y", 1, 0))),
    ]
    loop = Loop("cover", bounds=((1, 12),), body=body)
    graph = DependenceGraph(loop)
    assert ("A", "C", 5) in arc_set(graph.sync_arcs())
    assert ("A", "C", 5) in arc_set(graph.pruned_sync_arcs("exact"))
    assert ("A", "C", 5) not in arc_set(graph.pruned_sync_arcs("monotonic"))


def test_pruning_uses_free_textual_edges():
    """Arc (a, c, 3) covered by sync (a, b, 3) + free b-before-c edge."""
    body = [
        Statement("A", writes=(ref1("X", 1, 3), ref1("Z", 1, 3))),
        Statement("B", reads=(ref1("Z", 1, 0),)),
        Statement("C", reads=(ref1("X", 1, 0),)),
    ]
    loop = Loop("free", bounds=((1, 10),), body=body)
    graph = DependenceGraph(loop)
    assert ("A", "C", 3) in arc_set(graph.sync_arcs())
    assert ("A", "C", 3) not in arc_set(graph.pruned_sync_arcs("exact"))
    # the covering arc itself survives
    assert ("A", "B", 3) in arc_set(graph.pruned_sync_arcs("exact"))


def test_identical_arcs_of_different_types_collapse():
    """A write/write + write/read pair at the same distance is one sync
    arc ("no need to differentiate them")."""
    body = [
        Statement("A", writes=(ref1("X", 1, 1),)),
        Statement("B", writes=(ref1("X", 1, 0),),
                  reads=(ref1("X", 1, 0),)),
    ]
    loop = Loop("dual", bounds=((1, 8),), body=body)
    graph = DependenceGraph(loop)
    arcs = [a for a in graph.sync_arcs() if (a.src, a.dst) == ("A", "B")]
    assert len(arcs) == 1
    assert len(arcs[0].deps) >= 2  # it carries both dependences


def test_unknown_distance_rejected_for_sync():
    dep = Dependence("A", "A", "output", None, ref1("X", 1), ref1("X", 1))
    loop = Loop("u", bounds=((1, 4),), body=[Statement("A")])
    graph = DependenceGraph(loop, dependences=[dep])
    with pytest.raises(ValueError):
        graph.sync_arcs()


def test_linear_distance_matches_paper_example2(nested):
    """Fig. 5.2: (0,1) -> 1 and (1,1) -> M+1."""
    m = nested.extents[1]
    assert linear_distance(nested, (0, 1)) == 1
    assert linear_distance(nested, (1, 1)) == m + 1
    graph = DependenceGraph(nested)
    assert arc_set(graph.sync_arcs()) == {("S1", "S2", 1),
                                          ("S2", "S3", m + 1)}


def test_negative_linear_distance_rejected():
    """A lex-positive vector like (1, -3) with a tiny inner extent would
    coalesce to a backwards wait: must be refused, not silently wrong."""
    dep = Dependence("A", "B", "flow", (1, -3), ref1("X", 2), ref1("X", 2))
    body = [Statement("A"), Statement("B")]
    loop = Loop("neg", bounds=((1, 5), (1, 2)), body=body)
    graph = DependenceGraph(loop, dependences=[dep])
    with pytest.raises(ValueError):
        graph.sync_arcs()


def test_sources_sinks_incoming(fig21):
    graph = DependenceGraph(fig21)
    arcs = graph.pruned_sync_arcs()
    assert graph.sources(arcs) == ["S1", "S2", "S3", "S4"]
    assert graph.sinks(arcs) == ["S2", "S3", "S4", "S5"]
    incoming = graph.incoming("S4", arcs)
    assert arc_set(incoming) == {("S2", "S4", 1), ("S3", "S4", 2)}


def test_dependence_instances_respect_bounds(fig21):
    graph = DependenceGraph(fig21)
    instances = graph.dependence_instances()
    n = fig21.bounds[0][1]
    # S1->S2 at distance 2: sink iterations 3..N
    s12 = [(src, dst) for src, dst, _addr, _sk, _dk in instances
           if src[0] == "S1" and dst[0] == "S2"]
    assert len(s12) == n - 2
    assert min(dst[1] for _src, dst in s12) == 3


def test_dependence_instances_respect_guards(branchy):
    graph = DependenceGraph(branchy)
    instances = graph.dependence_instances()
    sb = branchy.statement("Sb")
    for src, _dst, _addr, _sk, _dk in instances:
        if src[0] == "Sb":
            index = branchy.index_of_lpid(src[1])
            assert sb.executes_at(index)


def test_dependence_instances_addresses(fig21):
    graph = DependenceGraph(fig21)
    for src, dst, addr, src_kind, dst_kind in graph.dependence_instances():
        if src[0] == "S1" and dst[0] == "S3":
            # S1 writes A[i+3]; S3 at i+1 reads A[i+3]
            assert addr == ("A", src[1] + 3)
            assert (src_kind, dst_kind) == ("W", "R")


def test_has_unknown_distance_property():
    dep = Dependence("A", "A", "output", None, ref1("X", 1), ref1("X", 1))
    loop = Loop("u", bounds=((1, 4),), body=[Statement("A")])
    assert DependenceGraph(loop, dependences=[dep]).has_unknown_distance
    assert not DependenceGraph(loop, dependences=[]).has_unknown_distance


def test_invalid_prune_mode():
    loop = Loop("u", bounds=((1, 4),), body=[Statement("A")])
    graph = DependenceGraph(loop, dependences=[])
    with pytest.raises(ValueError):
        graph.pruned_sync_arcs(mode="banana")
