"""Order-maintenance oracle: property-tested against brute force.

The OM structure answers ``precedes`` in O(1) from two-word labels; the
reference model here is the obvious O(#tasks)-per-event fine-grained
vector clock that ticks on *every* event and snapshots the full clock
per event.  Hypothesis drives both over randomized fork/join/sync
traces (including the prologue boot rule) and compares every pair of
recorded labels, plus a second differential that runs the full
streaming race check against the sanitizer's vector-clock oracle on
the same random streams.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.om import OrderMaintenance, check_stream
from repro.analyze.sanitizer import RaceEvent, _check_vc

#: two prologue tasks (exercise the boot rule) + three loop tasks
TASKS = ("init0", "init1", "p0", "p1", "p2")
VARS = ("v0", "v1")
ADDRS = (("A", 0), ("A", 1), ("B", 0))

#: one op: (task index, event kind, variable/address index)
OPS = st.lists(
    st.tuples(st.integers(0, len(TASKS) - 1),
              st.sampled_from(["R", "W", "acq", "rel", "upd"]),
              st.integers(0, 2)),
    min_size=1, max_size=50)

#: realistic prologue structure: every init-task event precedes every
#: loop-task event, as the machine guarantees (it runs each ``init*``
#: task to completion before the loop starts).  The epoch-granularity
#: vector clocks are only contracted to agree with OM on such streams:
#: an init task racing on *after* boot -- impossible in a real trace --
#: would be spuriously ordered by the boot join's epoch snapshot.
PHASED_OPS = st.tuples(
    st.lists(st.tuples(st.integers(0, 1),                  # init tasks
                       st.sampled_from(["R", "W", "acq", "rel", "upd"]),
                       st.integers(0, 2)), max_size=15),
    st.lists(st.tuples(st.integers(2, len(TASKS) - 1),     # loop tasks
                       st.sampled_from(["R", "W", "acq", "rel", "upd"]),
                       st.integers(0, 2)), min_size=1, max_size=40),
).map(lambda phases: phases[0] + phases[1])


class _BruteForce:
    """Fine-grained vector clocks: tick on every event, full snapshots.

    Mirrors the OM semantics directly -- per-task knowledge of others,
    an own-event counter bumped at every recorded event, release
    accumulating (knowledge + own tick) into the variable, acquire
    joining the variable back, and the same prologue boot rule (first
    non-``init`` task joins everything every existing task has done).
    """

    def __init__(self) -> None:
        self.clocks = {}          # task -> knowledge {task: tick}
        self.ticks = {}           # task -> own event counter
        self.var_clocks = {}      # var -> accumulated released clock
        self.booted = False
        self.boot = {}

    def task(self, name):
        if name not in self.clocks:
            if not self.booted and not name.startswith("init"):
                self.booted = True
                for other, clock in self.clocks.items():
                    self._join(self.boot, clock)
                    if self.ticks[other] > self.boot.get(other, 0):
                        self.boot[other] = self.ticks[other]
            self.clocks[name] = dict(self.boot) if self.booted else {}
            self.ticks[name] = 0
        return self.clocks[name]

    @staticmethod
    def _join(into, other):
        for task, tick in other.items():
            if tick > into.get(task, 0):
                into[task] = tick

    def step(self, name):
        """Record one event; return ((name, tick), full snapshot)."""
        self.ticks[name] += 1
        snapshot = dict(self.clocks[name])
        snapshot[name] = self.ticks[name]
        return (name, self.ticks[name]), snapshot

    def acquire(self, name, var):
        self._join(self.clocks[name], self.var_clocks.get(var, {}))

    def release(self, name, var):
        target = self.var_clocks.setdefault(var, {})
        self._join(target, self.clocks[name])
        if self.ticks[name] > target.get(name, 0):
            target[name] = self.ticks[name]

    @staticmethod
    def precedes(a, b):
        """Event a=(task, tick) happens-before event b's snapshot."""
        (task_a, tick_a), (_label_b, snapshot_b) = a, b
        return snapshot_b.get(task_a, 0) >= tick_a


def _replay(ops):
    """Drive OM and brute force through one trace; collect labels.

    Per recorded event: (om_label, bf_label, bf_snapshot).  Sync ops
    follow exactly the shape ``check_stream`` uses: acq = acquire then
    step, rel = step then release, upd = acquire, step, release.
    """
    om = OrderMaintenance()
    bf = _BruteForce()
    events = []
    for task_idx, kind, where in ops:
        name = TASKS[task_idx]
        tid = om.task(name)
        bf.task(name)
        if kind == "acq":
            om.acquire(tid, VARS[where % len(VARS)])
            bf.acquire(name, VARS[where % len(VARS)])
        elif kind == "upd":
            om.acquire(tid, VARS[where % len(VARS)])
            bf.acquire(name, VARS[where % len(VARS)])
        om.step(tid)
        label = om.label(tid)
        bf_label, snapshot = bf.step(name)
        if kind in ("rel", "upd"):
            om.release(tid, VARS[where % len(VARS)])
            bf.release(name, VARS[where % len(VARS)])
        events.append((label, bf_label, snapshot))
    return om, events


@given(OPS)
@settings(max_examples=500, deadline=None)
def test_precedes_matches_brute_force_vector_clocks(ops):
    """O(1) precedes == brute-force clocks, every pair, both ways."""
    om, events = _replay(ops)
    for om_a, bf_a, _snap_a in events:
        for om_b, bf_b, snap_b in events:
            expected = _BruteForce.precedes(bf_a, (bf_b, snap_b))
            assert om.precedes(om_a, om_b) == expected, (
                f"precedes({bf_a}, {bf_b}): om says "
                f"{om.precedes(om_a, om_b)}, clocks say {expected}")


@given(PHASED_OPS)
@settings(max_examples=200, deadline=None)
def test_streaming_check_agrees_with_vector_clock_oracle(ops):
    """check_stream and the VC oracle: same races, same order."""
    events = []
    for seq, (task_idx, kind, where) in enumerate(ops):
        place = (ADDRS[where % len(ADDRS)] if kind in ("R", "W")
                 else VARS[where % len(VARS)])
        events.append((seq, kind, place, TASKS[task_idx]))
    om_races = [RaceEvent(*race) for race in check_stream(events)]
    assert om_races == _check_vc(events)


def test_update_is_acquire_step_release():
    """om.update composes the primitives (API-level sanity)."""
    om = OrderMaintenance()
    p0, p1 = om.task("p0"), om.task("p1")
    write = (om.step(p0), om.label(p0))[1]
    om.step(p0)
    om.release(p0, "v")
    om.update(p1, "v")           # acquires p0's release
    after_update = om.label(p1)
    assert om.precedes(write, after_update)
    om.step(p0)
    assert not om.precedes(om.label(p0), after_update)


def test_unreleased_acquire_is_a_noop():
    om = OrderMaintenance()
    p0, p1 = om.task("p0"), om.task("p1")
    om.step(p0)
    a = om.label(p0)
    om.acquire(p1, "never-released")
    om.step(p1)
    assert not om.precedes(a, om.label(p1))


def test_boot_rule_orders_prologue_before_loop_tasks():
    """Everything init tasks did precedes every loop task's events."""
    om = OrderMaintenance()
    init = om.task("init0")
    om.step(init)
    init_label = om.label(init)
    loop_task = om.task("p0")          # triggers the boot join
    om.step(loop_task)
    assert om.precedes(init_label, om.label(loop_task))
    # but later init work is NOT implied
    om.step(init)
    assert not om.precedes(om.label(init), om.label(loop_task))
