"""Unit tests for the analyze-bench trajectory + regression gate.

These exercise the pure bookkeeping of ``repro.bench_analyze`` --
trajectory IO and the two-sided (raw + calibration-normalized)
regression rule -- on hand-built entries, so no timing runs here.
"""

from __future__ import annotations

import json

import pytest

from repro.bench_analyze import (
    ANALYZE_BENCH_SCHEMA_VERSION,
    append_entry,
    check_regression,
    load_trajectory,
)


def _entry(score: float, calibration: float,
           case_calibration: float | None = None) -> dict:
    case = {
        "kind": "sanitizer",
        "events": 1000,
        "races": 0,
        "wall_s": 0.1,
        "score_per_s": score,
    }
    if case_calibration is not None:
        case["calibration"] = case_calibration
    return {
        "schema_version": ANALYZE_BENCH_SCHEMA_VERSION,
        "note": "",
        "timestamp": "2026-01-01T00:00:00Z",
        "python": "3.11.7",
        "platform": "test",
        "calibration": calibration,
        "cases": {"sanitize/fig2.1/n=100/om": case},
    }


def test_real_drop_is_flagged() -> None:
    baseline = {"entries": [_entry(1000.0, 100.0)]}
    problems = check_regression(_entry(500.0, 100.0), baseline)
    assert len(problems) == 1
    assert "0.50x raw" in problems[0]


def test_one_sided_calibration_noise_passes() -> None:
    # raw throughput held steady; only the calibration snapshot moved
    # (a host-load burst at the calibration moment) -> not a regression
    baseline = {"entries": [_entry(1000.0, 100.0)]}
    problems = check_regression(_entry(1000.0, 140.0), baseline)
    assert problems == []


def test_slow_host_is_excused_by_normalization() -> None:
    # the whole host is half speed: raw drops 2x but normalized holds
    baseline = {"entries": [_entry(1000.0, 100.0)]}
    problems = check_regression(_entry(500.0, 50.0), baseline)
    assert problems == []


def test_per_case_calibration_overrides_entry_score() -> None:
    # entry-wide calibration says "same host speed" but the per-case
    # score (taken next to the measurement) says "half speed" -- the
    # per-case one wins, so the raw 2x drop normalizes away
    baseline = {"entries": [_entry(1000.0, 100.0, case_calibration=100.0)]}
    current = _entry(500.0, 100.0, case_calibration=50.0)
    assert check_regression(current, baseline) == []


def test_unmatched_labels_are_skipped() -> None:
    baseline = {"entries": [_entry(1000.0, 100.0)]}
    current = _entry(1.0, 100.0)
    current["cases"] = {"optimize/other/case": {"score_per_s": 1.0,
                                               "wall_s": 1.0}}
    assert check_regression(current, baseline) == []


def test_most_recent_matching_baseline_wins() -> None:
    baseline = {"entries": [_entry(4000.0, 100.0), _entry(1000.0, 100.0)]}
    # 900/s is fine vs the newer 1000/s baseline even though it would
    # fail against the older 4000/s entry
    assert check_regression(_entry(900.0, 100.0), baseline) == []


def test_trajectory_roundtrip(tmp_path) -> None:
    path = tmp_path / "BENCH_analyze.json"
    assert load_trajectory(path)["entries"] == []
    append_entry(path, _entry(1000.0, 100.0))
    append_entry(path, _entry(1100.0, 100.0))
    data = load_trajectory(path)
    assert [e["cases"]["sanitize/fig2.1/n=100/om"]["score_per_s"]
            for e in data["entries"]] == [1000.0, 1100.0]


def test_wrong_schema_version_rejected(tmp_path) -> None:
    path = tmp_path / "BENCH_analyze.json"
    path.write_text(json.dumps({"schema_version": 999, "entries": []}))
    with pytest.raises(ValueError, match="schema"):
        load_trajectory(path)
