"""Dynamic race sanitizer, both oracles: clean placements stay clean
across schedules; hand-built unsynchronized traces and starved
placements are flagged; order-maintenance and vector clocks agree."""

from __future__ import annotations

import pytest

from repro.analyze import (apply_mutant, check_trace, dynamic_check,
                           enumerate_mutants)
from repro.lab.apps import build_app
from repro.schemes.registry import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig
from repro.sim.engine import AccessRecord


@pytest.mark.parametrize("oracle", ["om", "vc"])
@pytest.mark.parametrize("schedule", ["self", "cyclic", "block"])
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_shipped_placements_sanitize_clean(scheme_name, schedule, oracle):
    loop = build_app("fig2.1", {"n": 12})
    instrumented = make_scheme(scheme_name).instrument(loop)
    verdict = dynamic_check(instrumented, schedule=schedule, oracle=oracle)
    assert verdict.verdict == "clean", verdict.races[:2]
    assert not verdict.killed


def test_clean_across_seedsized_machines():
    """Fewer processors than iterations: tasks queue and interleave."""
    loop = build_app("example2", {"n": 6, "m": 3})
    instrumented = make_scheme("reference-based").instrument(loop)
    for processors in (2, 5):
        verdict = dynamic_check(instrumented, processors=processors)
        assert verdict.verdict == "clean"


@pytest.mark.parametrize("oracle", ["om", "vc"])
def test_hand_built_racy_trace_is_flagged(oracle):
    """Two tasks touch one element with no sync edge between them."""

    class FakeResult:
        trace = [
            AccessRecord(commit=5, kind="W", addr=("A", 1), value=1,
                         task="p0", tag=None, seq=1),
            AccessRecord(commit=6, kind="R", addr=("A", 1), value=1,
                         task="p1", tag=None, seq=2),
        ]
        sync_trace = []

    races = check_trace(FakeResult(), oracle=oracle)
    assert len(races) == 1
    assert races[0].addr == ("A", 1)
    assert {races[0].first_task, races[0].second_task} == {"p0", "p1"}
    assert "A" in races[0].describe()


@pytest.mark.parametrize("oracle", ["om", "vc"])
def test_release_acquire_chain_suppresses_the_race(oracle):
    """The same access pair, now ordered through a sync variable."""

    class FakeResult:
        trace = [
            AccessRecord(commit=5, kind="W", addr=("A", 1), value=1,
                         task="p0", tag=None, seq=1),
            AccessRecord(commit=9, kind="R", addr=("A", 1), value=1,
                         task="p1", tag=None, seq=4),
        ]
        sync_trace = [
            (2, "rel", 7, 1, "p0"),
            (3, "acq", 7, 1, "p1"),
        ]

    assert check_trace(FakeResult(), oracle=oracle) == []


def test_unknown_oracle_rejected():
    class FakeResult:
        trace = []
        sync_trace = []

    with pytest.raises(ValueError, match="oracle"):
        check_trace(FakeResult(), oracle="coin-flip")


def test_engine_trace_from_real_run_checks_clean():
    loop = build_app("fig2.1", {"n": 10})
    instrumented = make_scheme("statement-oriented").instrument(loop)
    machine = Machine(MachineConfig(processors=4, record_trace=True))
    result = machine.run(instrumented)
    assert result.sync_trace, "engine must record sync events"
    assert check_trace(result) == []


def test_oracles_agree_on_real_runs():
    """Same RunResult, both oracles: identical race lists."""
    for scheme_name in scheme_names():
        loop = build_app("example3", {"n": 10})
        instrumented = make_scheme(scheme_name).instrument(loop)
        machine = Machine(MachineConfig(processors=10, record_trace=True))
        result = machine.run(instrumented)
        assert (check_trace(result, oracle="om")
                == check_trace(result, oracle="vc"))


def test_starved_waiter_surfaces_as_deadlock_verdict():
    """Deleting a load-bearing sync write kills via diagnosis, not hang."""
    loop = build_app("fig2.1", {"n": 10})
    instrumented = make_scheme("reference-based").instrument(loop)
    deletes = [m for m in enumerate_mutants(instrumented)
               if m.kind.startswith("delete")]
    assert deletes
    verdict = dynamic_check(apply_mutant(instrumented, deletes[0]))
    assert verdict.killed
    assert verdict.verdict in ("deadlock", "race", "corruption")
