"""Findings JSON: schema-versioned, typed, byte-stable round-trips."""

from __future__ import annotations

import json

import pytest

from repro.analyze import (ANALYZE_SCHEMA_VERSION, AnalysisReport,
                           DeadlockFinding, RaceFinding, RedundantArc,
                           verify)
from repro.lab.apps import build_app
from repro.schemes.registry import make_scheme


def _sample_report() -> AnalysisReport:
    return AnalysisReport(
        app="fig2.1", scheme="statement-oriented", window=10,
        races=[RaceFinding(src_sid="S1", dst_sid="S2", dep_type="flow",
                           distance=2, src_lpid=3, dst_lpid=5,
                           addr=["A", 6], detail="uncovered")],
        deadlocks=[DeadlockFinding(lpid=4, reason="wait var3 >= 6",
                                   cycle=["p4: wait var3"],
                                   detail="no satisfying write")],
        redundant=[RedundantArc(src_sid="S1", dst_sid="S3", distance=5,
                                detail="fold chain")],
        stats={"nodes": 120, "waits": 30})


def test_round_trip_preserves_every_field():
    report = _sample_report()
    clone = AnalysisReport.from_json(report.to_json())
    assert clone == report
    # findings come back as the typed classes, not dicts
    assert isinstance(clone.races[0], RaceFinding)
    assert isinstance(clone.deadlocks[0], DeadlockFinding)
    assert isinstance(clone.redundant[0], RedundantArc)


def test_file_round_trip_is_byte_stable(tmp_path):
    report = _sample_report()
    path = tmp_path / "findings.json"
    report.write_json(path)
    first = path.read_bytes()
    AnalysisReport.read_json(path).write_json(path)
    assert path.read_bytes() == first


def test_stale_schema_version_is_rejected():
    payload = _sample_report().to_json()
    payload["schema_version"] = ANALYZE_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="stale"):
        AnalysisReport.from_json(payload)
    with pytest.raises(ValueError, match="stale"):
        AnalysisReport.from_json({})


def test_clean_property_and_summary():
    report = _sample_report()
    assert not report.clean
    assert "UNSAFE" in report.summary()
    empty = AnalysisReport(app="a", scheme="s", window=4)
    assert empty.clean
    assert "clean" in empty.summary()
    serial = AnalysisReport(app="a", scheme="s", window=0,
                            requires_serial=True)
    assert not serial.clean
    assert "serial" in serial.summary()


def test_payload_is_plain_json():
    """No typed objects leak into the serialized form."""
    payload = _sample_report().to_json()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["schema_version"] == ANALYZE_SCHEMA_VERSION
    assert payload["clean"] is False


def test_real_report_round_trips():
    loop = build_app("fig2.1", {"n": 12})
    report = verify(loop, make_scheme("reference-based"), app="fig2.1")
    clone = AnalysisReport.from_json(report.to_json())
    assert clone == report
    assert clone.summary() == report.summary()
