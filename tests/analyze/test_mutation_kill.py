"""Mutation kill: neither oracle is vacuous.

Every app x scheme placement gets each eligible sync op deleted or
weakened, one mutant at a time.  The contract proven here:

* every **delete** mutant (a sync write or counted update some other
  task's wait needs) is flagged by the static verifier AND killed by
  the dynamic vector-clock sanitizer under a witness-guided schedule;
* every **weaken** mutant the verifier flags is dynamically killed too;
* every mutant the verifier passes as clean stays clean dynamically --
  the two oracles never disagree (the handful of statically-clean
  weakens are genuinely redundant waits, which is the eliminator's
  domain, not a missed bug);
* on every mutant trace that produced a checkable stream, the
  order-maintenance and vector-clock sanitizer oracles return the same
  races in the same order -- the full-corpus differential that lets
  the fast OM oracle stand in for the clocks everywhere.
"""

from __future__ import annotations

import functools

import pytest

from repro.analyze import (apply_mutant, check_trace, dynamic_check,
                           enumerate_mutants, kill_mutant,
                           verify_instrumented)
from repro.lab.apps import build_app
from repro.schemes.registry import make_scheme, scheme_names

#: small enough to sweep every mutant in seconds, large enough that
#: every verification window (2 x max distance, >= the fold factor
#: actually reachable at this size) fits the iteration space
SMALL = {
    "fig2.1": {"n": 10},
    "fig2.1-delay": {"n": 10},
    "example2": {"n": 5, "m": 3},
    "example3": {"n": 10},
    "fold-chain": {"n": 10},
    "relaxation-loop": {"n": 4},
    "triple-nested": {"n": 3, "m": 2, "k": 2},
    "hydro": {"n": 8},
    "tridiag": {"n": 8},
    "state": {"n": 8},
    "adi": {"n": 3, "m": 4},
    "first-diff": {"n": 8},
    "prefix": {"n": 12, "stride": 4},
}


@functools.lru_cache(maxsize=None)
def _sweep_pair(app, scheme_name):
    """(mutant, static_report, dynamic_verdict) for every mutant.

    Cached: the kill sweep and the oracle differential below share one
    simulation per mutant instead of paying for the corpus twice.
    """
    loop = build_app(app, SMALL[app])
    instrumented = make_scheme(scheme_name).instrument(loop)
    out = []
    for mutant in enumerate_mutants(instrumented):
        static = verify_instrumented(apply_mutant(instrumented, mutant),
                                     app=app, scheme_name=scheme_name)
        if static.clean:
            verdict = dynamic_check(apply_mutant(instrumented, mutant))
        else:
            verdict = kill_mutant(instrumented, mutant, static)
        out.append((mutant, static, verdict))
    return out


@pytest.mark.parametrize("app", sorted(SMALL))
def test_every_mutant_agreed_on(app):
    """Static and dynamic verdicts agree on every mutant of ``app``."""
    for scheme_name in scheme_names():
        for mutant, static, verdict in _sweep_pair(app, scheme_name):
            label = f"{app}/{scheme_name}/{mutant.label}"
            if mutant.kind in ("delete-write", "delete-update"):
                # deletions starve a waiter: both oracles must fire
                assert not static.clean, f"{label}: static missed"
                assert verdict.killed, f"{label}: sanitizer missed"
            elif static.clean:
                # statically redundant wait: dynamics must agree
                assert not verdict.killed, (
                    f"{label}: static clean but dynamically "
                    f"{verdict.verdict}")
            else:
                assert verdict.killed, (
                    f"{label}: static flagged but no schedule killed it")


@pytest.mark.parametrize("app", sorted(SMALL))
def test_oracles_agree_on_every_mutant(app):
    """OM and VC return identical race lists on every mutant trace.

    Diagnosed deadlocks carry no stream (the machine stopped before a
    trace existed), so both oracles trivially agree there; every other
    verdict -- clean, race, corruption -- carries the run, and the two
    oracles must match race for race on it.
    """
    for scheme_name in scheme_names():
        for mutant, _static, verdict in _sweep_pair(app, scheme_name):
            if verdict.result is None:
                continue  # diagnosed deadlock: nothing was traced
            races_om = check_trace(verdict.result, oracle="om")
            races_vc = check_trace(verdict.result, oracle="vc")
            assert races_om == races_vc, (
                f"{app}/{scheme_name}/{mutant.label}: oracles disagree")


def test_oracle_differential_is_not_vacuous():
    """Enough mutant runs carry streams (and races) to mean something."""
    streams = races = 0
    for app in sorted(SMALL):
        for scheme_name in scheme_names():
            for _mutant, _static, verdict in _sweep_pair(app, scheme_name):
                if verdict.result is None:
                    continue
                streams += 1
                races += bool(verdict.races)
    assert streams >= 30, streams
    assert races >= 5, races


def test_mutants_exist_for_every_scheme():
    """The eligibility rules do not silently empty the suite."""
    per_scheme = {name: 0 for name in scheme_names()}
    for app in SMALL:
        loop = build_app(app, SMALL[app])
        for scheme_name in scheme_names():
            instrumented = make_scheme(scheme_name).instrument(loop)
            per_scheme[scheme_name] += len(enumerate_mutants(instrumented))
    assert all(count > 0 for count in per_scheme.values()), per_scheme
    assert sum(per_scheme.values()) >= 100


def test_mutant_kinds_all_represented():
    """Deletes of writes, deletes of updates, and weakens all occur."""
    kinds = set()
    for app in SMALL:
        loop = build_app(app, SMALL[app])
        for scheme_name in scheme_names():
            instrumented = make_scheme(scheme_name).instrument(loop)
            kinds.update(m.kind for m in enumerate_mutants(instrumented))
    assert kinds == {"delete-write", "delete-update", "weaken-wait"}
