"""``python -m repro analyze``: the CLI face of the static analyzer."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.__main__ import build_analyze_parser, main
from repro.analyze import ANALYZE_SCHEMA_VERSION, AnalysisReport


def test_gate_mode_passes_on_the_shipped_placements(capsys):
    assert main(["analyze", "--gate"]) == 0
    out = capsys.readouterr().out
    assert "0 failing" in out
    assert "fig2.1/statement-oriented" in out


def test_gate_mode_writes_versioned_reports(tmp_path, capsys):
    path = tmp_path / "gate.json"
    assert main(["analyze", "--gate", "--app", "fig2.1",
                 "--json", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["schema_version"] == ANALYZE_SCHEMA_VERSION
    assert len(payload["reports"]) == 4
    report = AnalysisReport.from_json(
        payload["reports"]["fig2.1/statement-oriented"])
    assert report.clean


def test_pair_mode_with_elimination_and_findings_json(tmp_path, capsys):
    path = tmp_path / "findings.json"
    assert main(["analyze", "--app", "fig2.1",
                 "--scheme", "statement-oriented", "--eliminate",
                 "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "elimination" in out
    assert "identical final state" in out
    assert "dynamic cross-check" in out and "agrees" in out
    report = AnalysisReport.read_json(path)
    assert report.clean
    assert report.redundant, "dropped arcs belong in the findings JSON"


def test_pair_mode_requires_app_and_scheme(capsys):
    with pytest.raises(SystemExit):
        main(["analyze", "--app", "fig2.1"])
    assert "--gate" in capsys.readouterr().err


def test_param_overrides_the_gate_size(capsys):
    assert main(["analyze", "--app", "fig2.1",
                 "--scheme", "reference-based", "--param", "n=8",
                 "--static-only"]) == 0
    assert "window=" in capsys.readouterr().out


def test_analyze_parser_has_the_common_trio():
    args = build_analyze_parser().parse_args([])
    assert args.json is None and args.seed == 0 and args.procs == 1
    args = build_analyze_parser().parse_args(
        ["--json", "out.json", "--seed", "7", "--procs", "3"])
    assert args.json == pathlib.Path("out.json")
    assert args.seed == 7 and args.procs == 3


def test_sweep_preflight_and_elimination_column(tmp_path, capsys):
    spec = tmp_path / "mini.json"
    spec.write_text(json.dumps({
        "name": "mini",
        "apps": [["fig2.1", {"n": 12}]],
        "schemes": ["statement-oriented"],
        "eliminate": True,
    }))
    store = tmp_path / "sweeps.json"
    assert main(["sweep", "--spec", str(spec), "--no-cache",
                 "--preflight", "--json", str(store)]) == 0
    records = json.loads(store.read_text())["records"]
    (record,) = records.values()
    assert record["key"].endswith("/elim")
    elimination = record["metrics"]["elimination"]
    assert elimination["supported"] is True
    assert elimination["sync_ops_after"] < elimination["sync_ops_before"]
    assert elimination["dropped"]
