"""Static verifier: shipped placements prove clean; broken ones do not."""

from __future__ import annotations

from repro.analyze import (apply_mutant, enumerate_mutants, gate,
                           verify, verify_instrumented)
from repro.analyze.verifier import choose_window
from repro.depend.graph import DependenceGraph
from repro.depend.model import Loop, Statement, index_expr, ref1, ArrayRef
from repro.lab.apps import build_app
from repro.schemes.registry import make_scheme


def test_gate_every_shipped_pair_verifies_clean():
    result = gate()
    assert result.ok, result.failing
    assert not result.skipped, result.skipped
    # 13 registered apps x 4 schemes, none skipped
    assert len(result.reports) == 52
    for key, report in result.reports.items():
        assert report.clean, f"{key}: {report.summary()}"
        assert report.window >= 4
        # a doall loop (first-diff) legitimately has nothing to check
        if key.startswith("fig2.1/"):
            assert report.stats["instances_checked"] > 0, key


def test_window_covers_twice_the_max_distance():
    """Fig 2.1's farthest arc is d=4 (S1->S5): window 2*4 + slack."""
    loop = build_app("fig2.1", {"n": 64})
    window = choose_window(loop, DependenceGraph(loop))
    assert window >= 8 + 2


def test_window_at_least_the_fold_factor():
    """Process-counter folding (X counters) widens the window."""
    loop = build_app("fig2.1", {"n": 64})
    scheme = make_scheme("process-oriented", n_counters=16)
    report = verify(loop, scheme, app="fig2.1")
    assert report.clean
    assert report.window >= 16
    assert report.stats["fold_factor"] == 16


def test_window_never_exceeds_the_iteration_space():
    loop = build_app("fig2.1", {"n": 6})
    report = verify(loop, make_scheme("statement-oriented"), app="fig2.1")
    assert report.window <= 6


def test_explicit_window_override():
    loop = build_app("fig2.1", {"n": 64})
    report = verify(loop, make_scheme("statement-oriented"), window=7,
                    app="fig2.1")
    assert report.window == 7
    assert report.clean


def test_weakened_wait_yields_race_with_concrete_witness():
    """Weakening one await produces a finding naming a witness pair."""
    loop = build_app("fig2.1", {"n": 10})
    instrumented = make_scheme("statement-oriented").instrument(loop)
    weakens = [m for m in enumerate_mutants(instrumented)
               if m.kind == "weaken-wait"]
    assert weakens
    flagged = 0
    for mutant in weakens:
        report = verify_instrumented(apply_mutant(instrumented, mutant),
                                     app="fig2.1",
                                     scheme_name="statement-oriented")
        if report.clean:
            continue
        flagged += 1
        for race in report.races:
            # the witness pair is inside the analyzed window and the
            # arc really is one of the loop's dependences
            assert 0 <= race.src_lpid < report.window
            assert 0 <= race.dst_lpid < report.window
            assert race.src_lpid != race.dst_lpid
            assert (race.src_sid, race.dst_sid) in {
                (d.src, d.dst)
                for d in instrumented.graph.dependences}
    assert flagged > 0


def test_unknown_distance_refuses_to_certify():
    """distance=None means run serially -- never 'covered'."""
    body = [
        Statement("S1", writes=(ArrayRef("A", (index_expr(0, 1, 0, 2),)),)),
        Statement("S2", reads=(ref1("A", 1, 0),)),
    ]
    loop = Loop("mixed-coef", bounds=((1, 12),), body=body)
    graph = DependenceGraph(loop)
    assert graph.has_unknown_distance
    for scheme_name in ("reference-based", "statement-oriented"):
        report = verify(loop, make_scheme(scheme_name), graph=graph,
                        app="mixed-coef")
        assert report.requires_serial
        assert not report.clean
        assert not report.races and not report.deadlocks


def test_uninstrumented_loop_races_on_every_carried_dependence():
    """The null placement (no sync at all) must not verify clean."""
    loop = build_app("fig2.1", {"n": 10})
    instrumented = make_scheme("statement-oriented").instrument(loop)

    class Bare:
        def __getattr__(self, name):
            return getattr(instrumented, name)

        def make_process(self, iteration):
            from repro.sim.ops import SyncUpdate, SyncWrite, WaitUntil
            gen = instrumented.make_process(iteration)
            send = None
            while True:
                try:
                    op = gen.send(send)
                except StopIteration:
                    return
                send = None
                if isinstance(op, (SyncWrite, WaitUntil)):
                    continue
                if isinstance(op, SyncUpdate):
                    send = 0
                    continue
                send = yield op

    report = verify_instrumented(Bare(), app="fig2.1",
                                 scheme_name="null")
    assert not report.clean
    assert len(report.races) >= 3


def test_verify_is_deterministic():
    loop = build_app("fig2.1", {"n": 16})
    scheme = make_scheme("statement-oriented")
    first = verify(loop, scheme, app="fig2.1").to_json()
    second = verify(loop, scheme, app="fig2.1").to_json()
    assert first == second
