"""Redundant-sync elimination: verifier-judged, replay-validated."""

from __future__ import annotations

import pytest

from repro.analyze import (AnalysisError, dynamic_check, eliminate,
                           validate_elimination)
from repro.depend.graph import DependenceGraph
from repro.lab.apps import build_app
from repro.schemes.registry import make_scheme


def test_fold_chain_drops_the_folded_arc():
    """With 4 counters, the d=5 arc rides the fold's ownership chain
    (5 = 1 mod 4): the d=1 arc plus counter-slot reuse already order
    S1(i-5) before S3(i), so the verifier proves the arc redundant."""
    loop = build_app("fold-chain", {"n": 40})
    scheme = make_scheme("process-oriented", n_counters=4)
    result = eliminate(loop, scheme, app="fold-chain")
    assert result.baseline.clean
    assert [(arc.src_sid, arc.dst_sid, arc.distance)
            for arc in result.dropped] == [("S1", "S3", 5)]
    assert result.arcs_before == 2 and len(result.kept) == 1
    assert result.sync_ops_after < result.sync_ops_before

    replay = validate_elimination(loop, scheme, result)
    assert replay["sync_ops_after"] < replay["sync_ops_before"]


def test_fold_chain_keeps_the_arc_at_wide_fold():
    """With 16 counters the slot is not reused inside the window: the
    chain argument disappears and the arc must stay."""
    loop = build_app("fold-chain", {"n": 40})
    scheme = make_scheme("process-oriented", n_counters=16)
    result = eliminate(loop, scheme, app="fold-chain")
    assert result.baseline.clean
    assert result.dropped == []
    assert result.sync_ops_after == result.sync_ops_before


def test_fig21_statement_oriented_elimination_validates():
    """Cross-pair transitivity on the paper's Fig 2.1 loop: at least
    one arc is implied by the remaining placement, and the slimmed
    placement replays to an identical final state."""
    loop = build_app("fig2.1", {"n": 24})
    scheme = make_scheme("statement-oriented")
    result = eliminate(loop, scheme, app="fig2.1")
    assert result.baseline.clean
    assert result.dropped, "expected at least one redundant arc"
    assert result.sync_ops_after < result.sync_ops_before
    # every dropped arc is a real dependence arc of the loop
    graph = DependenceGraph(loop)
    arcs = {(a.src, a.dst, a.distance) for a in graph.sync_arcs()}
    for dropped in result.dropped:
        assert (dropped.src_sid, dropped.dst_sid, dropped.distance) in arcs

    replay = validate_elimination(loop, scheme, result)
    assert replay["sync_ops_after"] < replay["sync_ops_before"]


def test_slim_placement_is_dynamically_race_free():
    """The eliminator's output also passes the vector-clock oracle."""
    loop = build_app("fig2.1", {"n": 16})
    scheme = make_scheme("statement-oriented")
    result = eliminate(loop, scheme, app="fig2.1")
    assert result.dropped
    graph = DependenceGraph(loop)
    slim = scheme.instrument(loop, graph, arcs=list(result.kept))
    for schedule in ("self", "cyclic", "block"):
        verdict = dynamic_check(slim, schedule=schedule)
        assert verdict.verdict == "clean", (schedule, verdict.races[:2])


def test_non_arc_scheme_is_rejected():
    loop = build_app("fig2.1", {"n": 12})
    with pytest.raises(AnalysisError, match="not arc-driven"):
        eliminate(loop, make_scheme("reference-based"), app="fig2.1")


def test_kept_plus_dropped_partition_the_arcs():
    loop = build_app("fig2.1", {"n": 24})
    scheme = make_scheme("statement-oriented")
    instrumented = scheme.instrument(loop)
    result = eliminate(loop, scheme, app="fig2.1")
    total = {(a.src, a.dst, a.distance) for a in instrumented.arcs}
    kept = {(a.src, a.dst, a.distance) for a in result.kept}
    dropped = {(a.src_sid, a.dst_sid, a.distance) for a in result.dropped}
    assert kept | dropped == total
    assert not kept & dropped
