"""Cost-model-guided optimizer: beats farthest-first, replay-validated.

The acceptance bar: on at least three standing loops the search finds a
placement with strictly fewer sync ops (or equal ops and lower
predicted cycles) than the greedy farthest-first eliminator, and every
winner survives byte-identical simulator replay.
"""

from __future__ import annotations

import pytest

from repro.analyze import AnalysisError
from repro.analyze.gate import GATE_PARAMS
from repro.analyze.optimize import (OPTIMIZE_SCHEMA_VERSION,
                                    OptimizationReport, optimize,
                                    validate_optimization)
from repro.lab.apps import build_app
from repro.schemes.registry import make_scheme

#: (app, scheme) pairs where the search strictly beats farthest-first
#: in raw sync-op count (pinned: a regression here is a lost win)
STRICT_WINS = [
    ("fig2.1", "statement-oriented"),
    ("example3", "process-oriented"),
    ("fold-chain", "process-oriented"),
]


def _optimize(app, scheme_name):
    loop = build_app(app, GATE_PARAMS[app])
    scheme = make_scheme(scheme_name)
    return loop, scheme, optimize(loop, scheme, app=app)


@pytest.mark.parametrize("app,scheme_name", STRICT_WINS)
def test_search_strictly_beats_farthest_first(app, scheme_name):
    _loop, _scheme, report = _optimize(app, scheme_name)
    assert report.beats_baseline, report.summary()
    assert report.sync_ops_after < report.baseline["sync_ops_after"], (
        f"{app}/{scheme_name}: search {report.sync_ops_after} ops vs "
        f"farthest-first {report.baseline['sync_ops_after']}")
    assert report.improved
    assert report.sync_ops_after < report.sync_ops_before


@pytest.mark.parametrize("app,scheme_name", STRICT_WINS)
def test_every_winner_validates_by_identical_replay(app, scheme_name):
    loop, scheme, report = _optimize(app, scheme_name)
    payload = validate_optimization(loop, scheme, report)
    assert payload["final_state_identical"] is True
    assert payload["sync_ops_after"] < payload["sync_ops_before"]
    assert report.validation is payload  # stored on the report


def test_search_never_loses_to_farthest_first():
    """On every searchable pair the objective is at least as good."""
    for app in ("fig2.1-delay", "hydro", "tridiag"):
        for scheme_name in ("statement-oriented", "process-oriented"):
            _loop, _scheme, report = _optimize(app, scheme_name)
            base_ops = report.baseline["sync_ops_after"]
            assert report.sync_ops_after <= base_ops, (
                f"{app}/{scheme_name}: {report.sync_ops_after} vs "
                f"farthest-first {base_ops}")


def test_audit_trail_records_the_search():
    _loop, _scheme, report = _optimize("fig2.1", "statement-oriented")
    actions = {trial.action for trial in report.audit}
    assert "baseline" in actions and "drop-arc" in actions
    verdicts = {trial.verdict for trial in report.audit}
    assert "accepted" in verdicts
    # the chosen config's kept + dropped partition the arc set
    assert len(report.kept) + len(report.dropped) >= len(report.kept) > 0


def test_report_json_roundtrip(tmp_path):
    _loop, _scheme, report = _optimize("fold-chain", "process-oriented")
    path = tmp_path / "opt.json"
    report.write_json(path)
    loaded = OptimizationReport.read_json(path)
    assert loaded.to_json() == report.to_json()
    assert loaded.chosen_fold == report.chosen_fold
    assert loaded.beats_baseline == report.beats_baseline


def test_report_schema_version_rejected(tmp_path):
    _loop, _scheme, report = _optimize("fold-chain", "process-oriented")
    payload = report.to_json()
    payload["schema_version"] = OPTIMIZE_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        OptimizationReport.from_json(payload)


def test_non_arc_scheme_is_rejected():
    loop = build_app("fig2.1", GATE_PARAMS["fig2.1"])
    with pytest.raises(AnalysisError):
        optimize(loop, make_scheme("reference-based"), app="fig2.1")


def test_fold_search_finds_the_counter_fold_win():
    """fold-chain's d=5 arc only folds away at X=4: the search finds it."""
    _loop, _scheme, report = _optimize("fold-chain", "process-oriented")
    assert report.chosen_scheme == "process-oriented"
    assert report.chosen_fold is not None
    assert report.chosen_fold < 16  # beat the default fold factor
