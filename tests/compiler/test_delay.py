"""Doacross-delay analysis and its agreement with the simulator."""

from __future__ import annotations

import math

from repro.compiler.delay import (doacross_delay, statement_offsets,
                                  worth_doacross)
from repro.depend.model import Loop, Statement, ref1
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig


def test_statement_offsets_prefix_sums(fig21):
    offsets = statement_offsets(fig21)
    assert offsets["S1"] == (0, 10)
    assert offsets["S3"] == (20, 30)
    assert offsets["S5"] == (40, 50)


def test_doall_has_zero_delay(doall):
    report = doacross_delay(doall)
    assert report.delay == 0
    assert report.critical_arc is None
    assert report.parallelism_bound == math.inf


def test_recurrence_fully_serial(recurrence):
    """A[i] = A[i-1], one statement: delay = iteration time, parallelism
    bound 1 -- the loop is not worth running concurrently."""
    report = doacross_delay(recurrence)
    assert report.delay == report.iteration_time == 10
    assert report.parallelism_bound == 1.0
    assert not worth_doacross(recurrence, processors=8)


def test_fig21_delay_zero_by_spacing(fig21):
    """In Fig 2.1 every sink starts at or after its source's offset
    (e.g. S3 starts at 20, S1 ends at 10, distance 1): consecutive
    iterations can start together."""
    report = doacross_delay(fig21)
    assert report.delay == 0


def test_delay_formula_simple_chain():
    """S1 (cost 30) -> S2 (cost 10) at distance 1, S2 placed first:
    delay = (t_end(S1) - t_start(S2)) / 1 = 40 - 0 = 40... with S2
    textually after S1 it is (40 - 30)/1 = 10."""
    body = [
        Statement("S1", writes=(ref1("A", 1, 1),), cost=30),
        Statement("S2", reads=(ref1("A", 1, 0),), cost=10),
    ]
    loop = Loop("chain", bounds=((1, 10),), body=body)
    report = doacross_delay(loop)
    assert report.delay == (30 - 30) / 1  # S2 starts exactly at S1's end
    body_reversed = [
        Statement("S2", reads=(ref1("A", 1, 0),), cost=10),
        Statement("S1", writes=(ref1("A", 1, 1),), cost=30),
    ]
    loop2 = Loop("chain2", bounds=((1, 10),), body=body_reversed)
    report2 = doacross_delay(loop2)
    # sink starts at 0, source ends at 40 -> delay 40
    assert report2.delay == 40
    assert "S1->S2" in report2.critical_arc


def test_predicted_makespan_bounds():
    body = [Statement("S", writes=(ref1("A", 1, 0),),
                      reads=(ref1("A", 1, -1),), cost=10)]
    loop = Loop("r", bounds=((1, 20),), body=body)
    report = doacross_delay(loop)
    # fully serial chain: pipeline bound dominates
    assert report.predicted_makespan(20, 8) == 19 * 10 + 10
    assert report.predicted_speedup(20, 8) == 1.0


def test_prediction_is_a_lower_bound_for_simulation(fig21):
    """The analytic model ignores memory and sync overheads, so the
    simulator can only be slower -- but within a small constant factor
    for a compute-dominated loop."""
    report = doacross_delay(fig21)
    machine = Machine(MachineConfig(processors=8))
    result = ProcessOrientedScheme().run(fig21, machine=machine)
    predicted = report.predicted_makespan(fig21.n_iterations, 8)
    assert result.makespan >= predicted
    assert result.makespan <= 4 * predicted


def test_worth_doacross_positive(fig21):
    assert worth_doacross(fig21, processors=8)
