"""Cost estimates must track what the simulator actually spends."""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.compiler.cost_model import estimate_all
from repro.depend.graph import DependenceGraph
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig


@pytest.fixture(scope="module")
def estimates_and_runs():
    loop = fig21_loop(n=60)
    graph = DependenceGraph(loop)
    estimates = estimate_all(loop, graph, processors=8)
    machine = Machine(MachineConfig(processors=8))
    runs = {name: make_scheme(name).run(loop, machine=machine)
            for name in estimates}
    return estimates, runs


def test_sync_vars_estimated_exactly(estimates_and_runs):
    estimates, runs = estimates_and_runs
    for name in ("reference-based", "instance-based",
                 "statement-oriented"):
        assert estimates[name].sync_vars == runs[name].sync_vars, name
    # process-oriented: the estimator sizes X by the paper's rule
    assert estimates["process-oriented"].sync_vars == 16


def test_sync_ops_estimated_within_factor(estimates_and_runs):
    """The static op counts should be the right order of magnitude of
    the simulated counts (boundary skips and retries cause slack)."""
    estimates, runs = estimates_and_runs
    for name, estimate in estimates.items():
        simulated = runs[name].total_sync_ops
        assert 0.4 * estimate.sync_ops <= simulated <= 2.5 * estimate.sync_ops, \
            (name, estimate.sync_ops, simulated)


def test_ordering_of_variable_counts(estimates_and_runs):
    estimates, _runs = estimates_and_runs
    assert (estimates["statement-oriented"].sync_vars
            < estimates["process-oriented"].sync_vars
            < estimates["reference-based"].sync_vars
            < estimates["instance-based"].sync_vars)


def test_flags(estimates_and_runs):
    estimates, _runs = estimates_and_runs
    assert estimates["process-oriented"].free_spinning
    assert estimates["statement-oriented"].free_spinning
    assert estimates["statement-oriented"].serializes_statements
    assert not estimates["process-oriented"].serializes_statements
    assert not estimates["reference-based"].free_spinning


def test_init_writes_scale(estimates_and_runs):
    estimates, _runs = estimates_and_runs
    assert estimates["reference-based"].init_writes == 64  # N + 4
    assert estimates["process-oriented"].init_writes == 16


def test_ops_per_iteration(estimates_and_runs):
    estimates, _runs = estimates_and_runs
    per_iter = estimates["process-oriented"].ops_per_iteration(60)
    assert 5 <= per_iter <= 12  # ~4 waits + 3 marks + transfer
