"""Multi-loop programs: chained memory, mixed classifications."""

from __future__ import annotations

import pytest

from repro.compiler import run_program
from repro.frontend import parse_loop


def make_program():
    produce = parse_loop("DO I = 1, 20\n  A(I) = ...\nEND DO",
                         name="produce")
    smooth = parse_loop("DO I = 2, 20\n  B(I) = A(I) + B(I-1)\nEND DO",
                        name="smooth")
    reduce_ = parse_loop("DO I = 1, 20\n  C(5) = B(I)\nEND DO",
                         name="reduce")  # loop-invariant write: serial
    return [produce, smooth, reduce_]


def test_program_runs_and_validates():
    program = run_program(make_program(), processors=4)
    assert program.schemes_used == ["process-oriented",
                                    "process-oriented", "serial"]
    assert program.total_cycles == sum(run.result.makespan
                                       for run in program.runs)


def test_values_flow_between_loops():
    """Loop 2 reads what loop 1 wrote: the chained final state equals
    the sequential chain (checked internally; spot-check one element)."""
    loops = make_program()
    program = run_program(loops, processors=4)
    state = {}
    for loop in loops:
        state, _ = loop.execute_sequential(state)
    assert program.final_state[("C", 5)] == state[("C", 5)]
    assert program.final_state[("B", 20)] == state[("B", 20)]


def test_forced_scheme_applies_to_parallel_loops():
    program = run_program(make_program()[:2], processors=4,
                          force_scheme="statement-oriented")
    assert program.schemes_used == ["statement-oriented"] * 2


def test_instance_based_copy_out():
    """The renamed scheme's final state is copied back to program
    arrays so the next loop sees it."""
    loops = make_program()[:2]
    program = run_program(loops, processors=4,
                          force_scheme="instance-based")
    state = {}
    for loop in loops:
        state, _ = loop.execute_sequential(state)
    assert program.final_state[("B", 20)] == state[("B", 20)]


def test_empty_program_rejected():
    with pytest.raises(ValueError):
        run_program([])


def test_single_serial_loop_program():
    # A(2*I) vs A(I): coefficient mismatch, distance not constant
    serial = parse_loop("DO I = 1, 8\n  A(I) = ...\n  B(I) = A(2*I)\n"
                        "END DO", name="serial-only")
    program = run_program([serial], processors=4)
    assert program.schemes_used == ["serial"]
    assert program.runs[0].result.makespan > 0


def test_small_invariant_write_becomes_doacross():
    """C(3) written every iteration: with only 8 iterations the
    enumerator finds all 7 realizable output distances, which exact
    pruning collapses to the d=1 chain -- a valid (serialized) DOACROSS
    rather than a bail-out to serial."""
    loop = parse_loop("DO I = 1, 8\n  C(3) = A(I)\nEND DO",
                      name="invariant")
    program = run_program([loop], processors=4)
    assert program.schemes_used != ["serial"]
    # the sequential-equivalence validation inside run_program passed,
    # so the serialization was enforced correctly
    state, _ = loop.execute_sequential({})
    assert program.final_state[("C", 3)] == state[("C", 3)]


def test_summary_rows():
    program = run_program(make_program(), processors=4)
    rows = program.summary()
    assert [row["loop"] for row in rows] == ["produce", "smooth",
                                             "reduce"]
    assert all("makespan" in row for row in rows)


def test_program_objective_forwarded():
    program = run_program(make_program()[:2], processors=4,
                          objective="storage")
    # storage objective picks the statement scheme for the DOACROSS
    assert program.runs[1].scheme == "statement-oriented"
