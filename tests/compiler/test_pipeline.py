"""The compile pipeline: classification, selection, instrumentation."""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.compiler import CompileError, compile_loop
from repro.depend.model import AffineExpr, ArrayRef, Loop, Statement, ref1
from repro.sim import Machine, MachineConfig


def test_doacross_chooses_process_oriented_for_time(fig21):
    result = compile_loop(fig21, objective="time")
    assert result.classification.label == "doacross"
    assert result.chosen_scheme == "process-oriented"
    assert result.runs_parallel
    assert result.instrumented is not None


def test_storage_objective_prefers_statement_counters(fig21):
    result = compile_loop(fig21, objective="storage")
    assert result.chosen_scheme == "statement-oriented"  # 4 vars


def test_serial_loop_not_instrumented():
    body = [
        Statement("S1", writes=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ArrayRef("A", (AffineExpr((2,), 0),)),)),
    ]
    loop = Loop("serial", bounds=((1, 10),), body=body)
    result = compile_loop(loop)
    assert result.chosen_scheme == "serial"
    assert result.instrumented is None
    assert not result.runs_parallel


def test_doall_needs_no_sync(doall):
    result = compile_loop(doall)
    assert result.chosen_scheme == "process-oriented"
    assert "DOALL" in result.rationale
    # the instrumented DOALL emits no waits or marks
    machine = Machine(MachineConfig(processors=4))
    run = machine.run(result.instrumented)
    result.instrumented.validate(run)
    assert run.total_sync_ops == 0


def test_compiled_loop_simulates_and_validates(fig21):
    result = compile_loop(fig21)
    machine = Machine(MachineConfig(processors=8))
    run = machine.run(result.instrumented)
    result.instrumented.validate(run)


def test_force_scheme(fig21):
    result = compile_loop(fig21, force_scheme="reference-based")
    assert result.chosen_scheme == "reference-based"
    assert "forced" in result.rationale


def test_candidate_restriction(fig21):
    result = compile_loop(fig21, candidates=["reference-based",
                                             "instance-based"])
    assert result.chosen_scheme in ("reference-based", "instance-based")


def test_errors():
    loop = fig21_loop(n=10)
    with pytest.raises(CompileError):
        compile_loop(loop, objective="vibes")
    with pytest.raises(CompileError):
        compile_loop(loop, force_scheme="quantum")
    with pytest.raises(CompileError):
        compile_loop(loop, candidates=["quantum"])


def test_explain_is_readable(fig21):
    text = compile_loop(fig21).explain()
    assert "doacross" in text
    assert "<== chosen" in text
    assert "rationale" in text


def test_explain_serial():
    body = [
        Statement("S1", writes=(ref1("A", 1, 0),)),
        Statement("S2", reads=(ArrayRef("A", (AffineExpr((2,), 0),)),)),
    ]
    loop = Loop("serial", bounds=((1, 10),), body=body)
    text = compile_loop(loop).explain()
    assert "serial" in text.lower()


def test_profitability_gate():
    """serialize_unprofitable refuses pipelines the delay model says
    cannot pay off, and leaves profitable loops alone."""
    from repro.apps.kernels import recurrence_loop
    gated = compile_loop(recurrence_loop(n=40), processors=8,
                         serialize_unprofitable=True)
    assert gated.chosen_scheme == "serial"
    assert gated.instrumented is None
    assert "not worthwhile" in gated.rationale

    fine = compile_loop(fig21_loop(n=40), processors=8,
                        serialize_unprofitable=True)
    assert fine.chosen_scheme != "serial"

    # forcing a scheme overrides the gate
    forced = compile_loop(recurrence_loop(n=40), processors=8,
                          serialize_unprofitable=True,
                          force_scheme="process-oriented")
    assert forced.chosen_scheme == "process-oriented"
