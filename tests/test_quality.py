"""Repository-wide quality gates: accounting invariants, documentation."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro.apps import PipelinedRelaxation, fig21_loop, run_relaxation
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig


def walk_modules():
    packages = [repro]
    modules = []
    for package in packages:
        for info in pkgutil.walk_packages(package.__path__,
                                          package.__name__ + "."):
            modules.append(importlib.import_module(info.name))
    return modules


def test_every_module_documented():
    for module in walk_modules():
        assert module.__doc__ and module.__doc__.strip(), \
            f"{module.__name__} has no module docstring"


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


@pytest.mark.parametrize("name", scheme_names())
def test_accounting_never_exceeds_makespan(name):
    """busy + spin + stall of any processor fits inside the makespan."""
    loop = fig21_loop(n=40)
    machine = Machine(MachineConfig(processors=4))
    result = make_scheme(name).run(loop, machine=machine)
    for stats in result.processors:
        assert stats.accounted <= result.makespan, (name, stats)
        assert stats.done_at <= result.makespan


def test_total_busy_is_exactly_the_work():
    """Compute cycles are conserved: sum of busy equals the loop's
    serial compute time (plus nothing)."""
    loop = fig21_loop(n=40)
    machine = Machine(MachineConfig(processors=4))
    result = make_scheme("process-oriented").run(loop, machine=machine)
    assert result.total_busy == loop.serial_cycles()


def test_activity_segments_match_stats():
    result = run_relaxation(PipelinedRelaxation(12, group=1), processors=4)
    activity = result.extra["activity"]
    busy_by_task = {}
    for task, kind, start, end in activity:
        if kind == "busy":
            busy_by_task[task] = busy_by_task.get(task, 0) + (end - start)
    for stats in result.processors:
        assert busy_by_task.get(stats.name, 0) == stats.busy


def test_package_version():
    assert repro.__version__
