"""Every example script must run to completion (they self-validate)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # examples accepting CLI sizes get small ones to stay fast
    monkeypatch.setattr(sys, "argv", [str(script), "16", "4"])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3
