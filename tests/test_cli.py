"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pathlib

import pytest

from repro.__main__ import (DEMO_SOURCE, build_chaos_parser, build_parser,
                            build_sweep_parser, main)


def test_demo_runs(capsys):
    assert main(["--demo", "--processors", "4"]) == 0
    out = capsys.readouterr().out
    assert "doacross" in out
    assert "<== chosen" in out
    assert "validated against sequential semantics" in out
    assert "#=compute" in out


def test_file_input(tmp_path, capsys):
    source = tmp_path / "loop.f"
    source.write_text("DO I = 1, N\n  A(I) = A(I-1)\nEND DO\n")
    assert main([str(source), "--bind", "N=20",
                 "--processors", "2"]) == 0
    out = capsys.readouterr().out
    assert "loop 'loop'" in out


def test_forced_scheme(capsys):
    assert main(["--demo", "--scheme", "statement-oriented",
                 "--processors", "2"]) == 0
    out = capsys.readouterr().out
    assert "forced by caller" in out


def test_serial_loop_reports_and_exits(tmp_path, capsys):
    source = tmp_path / "serial.f"
    # A(2*I) vs A(I): non-constant distance -> serial classification
    source.write_text("DO I = 1, 9\n  A(I) = ...\n  B(I) = A(2*I)\n"
                      "END DO\n")
    assert main([str(source)]) == 0
    out = capsys.readouterr().out
    assert "runs serially" in out


def test_bad_bind_rejected(capsys):
    assert main(["--demo", "--bind", "oops"]) == 2
    assert "NAME=VALUE" in capsys.readouterr().err


def test_missing_source_rejected(capsys):
    assert main([]) == 2
    assert "--demo" in capsys.readouterr().err


def test_objective_and_schedule_flags(capsys):
    assert main(["--demo", "--objective", "storage",
                 "--schedule", "cyclic", "--processors", "2"]) == 0
    out = capsys.readouterr().out
    assert "cyclic scheduling" in out


def test_parser_defaults():
    args = build_parser().parse_args(["--demo"])
    assert args.processors == 8
    assert args.objective == "time"
    assert args.schedule == "self"


def test_demo_source_is_fig21():
    assert "A(I+3)" in DEMO_SOURCE
    assert DEMO_SOURCE.count(":") == 5


def test_chaos_mode_smoke(capsys):
    assert main(["chaos", "--seeds", "1", "--n", "8", "--processors", "2",
                 "--schemes", "process-oriented",
                 "--plans", "jitter,lossy-bus"]) == 0
    out = capsys.readouterr().out
    assert "chaos sweep" in out
    assert "degradation contract holds" in out
    assert "process-oriented" in out


def test_chaos_mode_recover_writes_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "chaos.json"
    assert main(["chaos", "--seeds", "1", "--n", "8", "--processors", "2",
                 "--schemes", "statement-oriented",
                 "--plans", "lossy-bus,crash-task",
                 "--recover", "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "[recovery on]" in out
    assert "recovery totals:" in out
    records = json.loads(out_path.read_text())
    assert len(records) == 2
    for record in records:
        assert record["outcome"] == "ok"
        assert "recovery" in record and "recovery_actions" in record
    assert any(sum(r["recovery"].values()) > 0 for r in records)


def test_chaos_mode_rejects_unknown_plan(capsys):
    with pytest.raises(ValueError, match="unknown fault plan"):
        main(["chaos", "--seeds", "1", "--plans", "nope"])


def test_common_options_uniform_across_modes():
    """--json/--seed/--procs mean the same thing in every subcommand."""
    for build in (build_parser, build_chaos_parser, build_sweep_parser):
        args = build().parse_args([] if build is not build_parser
                                  else ["--demo"])
        assert args.json is None
        assert args.seed == 0
        assert args.procs == 1
        args = build().parse_args(
            (["--demo"] if build is build_parser else [])
            + ["--json", "out.json", "--seed", "7", "--procs", "3"])
        assert args.json == pathlib.Path("out.json")
        assert args.seed == 7
        assert args.procs == 3


def test_sweep_list(capsys):
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    for preset in ("fig3.1", "fig3.2", "scheme-comparison", "speedup",
                   "kernels", "smoke"):
        assert preset in out


def test_sweep_requires_spec(capsys):
    with pytest.raises(SystemExit):
        main(["sweep"])
    assert "--spec" in capsys.readouterr().err


def test_sweep_cold_then_warm(tmp_path, capsys):
    import json

    cache = tmp_path / "cache"
    store = tmp_path / "sweeps.json"
    argv = ["sweep", "--spec", "smoke", "--cache-dir", str(cache),
            "--json", str(store)]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 hit(s), 8 miss(es)" in out
    assert "merged 8 record(s)" in out
    first = store.read_bytes()

    # warm: every cell a cache hit, byte-identical merged store
    assert main(argv + ["--assert-cached"]) == 0
    out = capsys.readouterr().out
    assert "8 hit(s), 0 miss(es)" in out
    assert store.read_bytes() == first
    records = json.loads(store.read_text())["records"]
    assert len(records) == 8
    assert all(r["outcome"] == "ok" for r in records.values())


def test_sweep_assert_cached_fails_cold(tmp_path, capsys):
    assert main(["sweep", "--spec", "smoke", "--cache-dir",
                 str(tmp_path / "cache"), "--assert-cached"]) == 1
    assert "--assert-cached: FAILED" in capsys.readouterr().out


def test_sweep_spec_file_and_seed_base(tmp_path, capsys):
    import json

    from repro.lab import SweepSpec

    spec = SweepSpec.build("filed", apps=[("fig2.1", {"n": 8, "cost": 4})],
                           schemes=["process-oriented"], processors=(2,))
    spec_path = tmp_path / "filed.json"
    spec_path.write_text(json.dumps(spec.to_json()))
    assert main(["sweep", "--spec", str(spec_path), "--no-cache",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "filed" in out
    assert "cache: disabled" in out
    # --seed shifts every cell's seed, exactly like the chaos mode
    assert " 5 " in out


def test_program_mode(tmp_path, capsys):
    source = tmp_path / "prog.f"
    source.write_text("""
DO I = 1, N
  A(I) = ...
END DO
DO I = 2, N
  B(I) = A(I) + B(I-1)
END DO
""")
    assert main([str(source), "--program", "--bind", "N=12",
                 "--processors", "2"]) == 0
    out = capsys.readouterr().out
    assert "2-loop program" in out
    assert "validated" in out


def test_doctor_absent_cache_is_a_clean_no_op(tmp_path, capsys):
    assert main(["doctor", "--cache-dir", str(tmp_path / "nope")]) == 0
    assert "nothing to diagnose" in capsys.readouterr().out


def test_doctor_inject_diagnose_repair_cycle(tmp_path, capsys):
    import json

    cache = tmp_path / "cache"
    assert main(["sweep", "--spec", "smoke", "--cache-dir",
                 str(cache)]) == 0
    capsys.readouterr()
    assert main(["doctor", "--cache-dir", str(cache)]) == 0
    assert "healthy" in capsys.readouterr().out

    # injected damage: the dry run reports it and exits non-zero
    assert main(["doctor", "--cache-dir", str(cache), "--seed", "3",
                 "--inject", "bit-flips=2,truncations=1"]) == 1
    out = capsys.readouterr().out
    assert "injected bit-flips: 2 file(s)" in out
    assert "NEEDS REPAIR" in out

    # --repair quarantines and exits 0, with a machine-readable report
    report_path = tmp_path / "doctor.json"
    assert main(["doctor", "--cache-dir", str(cache), "--repair",
                 "--json", str(report_path)]) == 0
    assert "repaired" in capsys.readouterr().out
    report = json.loads(report_path.read_text())
    assert report["counts"]["corrupt"] == 3
    assert report["counts"]["quarantined"] == 3

    # the store is clean again, and the next sweep re-pays exactly
    # the damaged cells
    assert main(["doctor", "--cache-dir", str(cache)]) == 0
    assert "healthy" in capsys.readouterr().out
    assert main(["sweep", "--spec", "smoke", "--cache-dir",
                 str(cache)]) == 0
    assert "5 hit(s), 3 miss(es)" in capsys.readouterr().out


def test_doctor_rejects_bad_inject_spec(tmp_path, capsys):
    (tmp_path / "cache").mkdir()
    with pytest.raises(SystemExit):
        main(["doctor", "--cache-dir", str(tmp_path / "cache"),
              "--inject", "bogus=1"])
    assert "bad --inject spec" in capsys.readouterr().err
