"""Integration sweep: every paper kernel x scheme x scheduling policy.

The broad safety net: each combination must simulate to completion and
pass full validation (reads match sequential, final state matches,
dependence commit order holds for non-renaming schemes).  Sizes are kept
small; the cross products still cover 100+ distinct configurations.
"""

from __future__ import annotations

import pytest

from repro.apps.kernels import (example2_loop, example3_loop, fig21_loop,
                                late_source_loop, recurrence_loop,
                                triple_nested_loop)
from repro.depend.transform import wavefront
from repro.apps.kernels import relaxation_loop
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig

KERNELS = {
    "fig2.1": lambda: fig21_loop(n=16, cost=4),
    "example2": lambda: example2_loop(n=4, m=3, cost=4),
    "example3": lambda: example3_loop(n=12, cost=4, long_branch_cost=20),
    "late-source": lambda: late_source_loop(n=12, body_cost=12),
    "recurrence": lambda: recurrence_loop(n=10, cost=4),
    "triple": lambda: triple_nested_loop(n=3, m=2, k=2, cost=4),
    "wavefronted-relaxation": lambda: wavefront(relaxation_loop(n=5)),
}

SCHEDULES = ("self", "chunk", "guided", "cyclic", "block")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_kernel_scheme_matrix(kernel, scheme_name):
    loop = KERNELS[kernel]()
    machine = Machine(MachineConfig(processors=4))
    result = make_scheme(scheme_name).run(loop, machine=machine)
    assert result.makespan > 0


@pytest.mark.parametrize("kernel", ["fig2.1", "example3", "late-source"])
@pytest.mark.parametrize("schedule", SCHEDULES)
def test_kernel_schedule_matrix(kernel, schedule):
    loop = KERNELS[kernel]()
    machine = Machine(MachineConfig(processors=4, schedule=schedule))
    result = make_scheme("process-oriented").run(loop, machine=machine)
    assert result.makespan > 0


@pytest.mark.parametrize("kernel", ["fig2.1", "example2", "late-source"])
@pytest.mark.parametrize("processors", [1, 2, 3, 8])
def test_kernel_processor_matrix(kernel, processors):
    loop = KERNELS[kernel]()
    machine = Machine(MachineConfig(processors=processors))
    result = make_scheme("process-oriented").run(loop, machine=machine)
    assert result.makespan > 0


@pytest.mark.parametrize("kernel", ["fig2.1", "example3"])
def test_kernel_fabric_matrix(kernel):
    loop = KERNELS[kernel]()
    machine = Machine(MachineConfig(processors=4))
    for fabric in ("broadcast", "cached"):
        scheme = make_scheme("process-oriented", fabric=fabric)
        result = scheme.run(loop, machine=machine)
        assert result.makespan > 0
