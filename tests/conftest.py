"""Shared fixtures: canonical loops and machines."""

from __future__ import annotations

import pytest

from repro.apps.kernels import (doall_loop, example2_loop, example3_loop,
                                fig21_loop, recurrence_loop)
from repro.sim import Machine, MachineConfig


@pytest.fixture
def fig21():
    """The paper's running example, small enough for fast simulation."""
    return fig21_loop(n=30)


@pytest.fixture
def nested():
    """The multiply-nested Example 2 loop."""
    return example2_loop(n=6, m=4)


@pytest.fixture
def branchy():
    """The Example 3 loop with sources in branches."""
    return example3_loop(n=24)


@pytest.fixture
def recurrence():
    return recurrence_loop(n=20)


@pytest.fixture
def doall():
    return doall_loop(n=20)


@pytest.fixture
def machine4():
    """A 4-processor self-scheduled machine."""
    return Machine(MachineConfig(processors=4))


@pytest.fixture
def machine8():
    """An 8-processor self-scheduled machine."""
    return Machine(MachineConfig(processors=8))
