"""The SweepOptions surface and the legacy-kwargs deprecation shim.

``run_sweep(spec, procs=..., cache_dir=...)`` (the historical 14-kwarg
spelling) must keep working for one release, warn, and produce a report
identical to the ``options=SweepOptions(...)`` spelling -- the pinned
regression for the options collapse.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.lab import SweepOptions, SweepSpec, run_sweep


def grid_spec():
    return SweepSpec.build(
        "options-grid",
        apps=[("fig2.1", {"n": n, "cost": 4}) for n in (10, 14)],
        schemes=["process-oriented", "statement-oriented"],
        processors=(2,))


def test_options_are_frozen_and_defaulted():
    options = SweepOptions()
    assert options.procs == 1
    assert options.single_flight
    assert not options.resume
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.procs = 4


def test_legacy_kwargs_warn_and_match_options_spelling(tmp_path):
    """The shim regression: identical SweepReport both ways."""
    with pytest.warns(DeprecationWarning, match="SweepOptions"):
        legacy = run_sweep(grid_spec(), procs=2,
                           cache_dir=tmp_path / "legacy",
                           json_path=tmp_path / "legacy.json")
    modern = run_sweep(grid_spec(), options=SweepOptions(
        procs=2, cache_dir=tmp_path / "modern",
        json_path=tmp_path / "modern.json"))
    assert legacy.records == modern.records
    assert (legacy.hits, legacy.misses) == (modern.hits, modern.misses)
    assert legacy.failed == modern.failed
    # and the merged stores agree byte for byte
    assert ((tmp_path / "legacy.json").read_bytes()
            == (tmp_path / "modern.json").read_bytes())


def test_legacy_on_progress_still_fires(tmp_path):
    seen = []
    with pytest.warns(DeprecationWarning):
        run_sweep(grid_spec(), cache_dir=tmp_path,
                  on_progress=lambda key, record: seen.append(key))
    assert len(seen) == 4
    # warm rerun: cache hits never fired the legacy callback
    seen.clear()
    with pytest.warns(DeprecationWarning):
        run_sweep(grid_spec(), cache_dir=tmp_path,
                  on_progress=lambda key, record: seen.append(key))
    assert seen == []


def test_unknown_kwarg_is_a_type_error(tmp_path):
    with pytest.raises(TypeError, match="bogus"):
        run_sweep(grid_spec(), bogus=1)


def test_mixing_options_and_legacy_kwargs_is_a_type_error(tmp_path):
    with pytest.raises(TypeError, match="options"):
        run_sweep(grid_spec(), options=SweepOptions(), procs=2)
