"""The sweep service: shared pool, in-flight dedup, events, drain/resume.

The acceptance bar (pinned here and in the ``service-smoke`` CI job):
two clients racing overlapping grids through one service produce a
merged store byte-identical to a solo run over the union grid with
zero duplicated simulations, and a drained server's restart resumes
every interrupted job recomputing nothing already paid for.
"""

from __future__ import annotations

import threading

from repro.lab import (CellDone, JobCancelled, JobDone, JobSubmitted,
                       ServiceClient, ServiceServer, SweepOptions,
                       SweepService, SweepSpec, run_sweep)
from repro.lab.store import JOBS_DIR

import pytest


def n_grid(ns, name="svc"):
    return SweepSpec.build(
        name, apps=[("fig2.1", {"n": n, "cost": 4}) for n in ns],
        schemes=["process-oriented", "statement-oriented"],
        processors=(2,))


def paid_keys(handle):
    """Cell keys this job simulated itself (its cell-done events)."""
    return [event.key for event in handle._job.events
            if isinstance(event, CellDone)]


# -- concurrent jobs share one pool and one single-flight domain ----------


def test_overlapping_jobs_pay_for_the_union_exactly_once(tmp_path):
    """The tentpole acceptance: byte-identical store, zero dup sims."""
    solo_store = tmp_path / "solo.json"
    run_sweep(n_grid((10, 12, 14, 16)), options=SweepOptions(
        procs=2, cache_dir=tmp_path / "solo-cache", json_path=solo_store))

    store = tmp_path / "merged.json"
    options = SweepOptions(procs=2, cache_dir=tmp_path / "cache",
                           json_path=store)
    with SweepService(options) as service:
        barrier = threading.Barrier(2)
        handles = [None, None]

        def race(slot, ns):
            barrier.wait()
            handles[slot] = service.submit(n_grid(ns))

        threads = [threading.Thread(target=race, args=(slot, ns))
                   for slot, ns in enumerate([(10, 12, 14), (12, 14, 16)])]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reports = [handle.result(timeout=300) for handle in handles]

        # each job saw all 6 of its cells, none failed
        for report in reports:
            assert not report.failed
            assert report.hits + report.misses == 6

        # zero duplicated simulations: the union grid (8 cells), each
        # paid for exactly once across both jobs
        paid = paid_keys(handles[0]) + paid_keys(handles[1])
        assert len(paid) == len(set(paid)) == 8

    # the merged store is byte-identical to the solo union run
    assert store.read_bytes() == solo_store.read_bytes()
    # durable job files are gone once their jobs completed
    assert not list((tmp_path / "cache" / JOBS_DIR).glob("job-*.json"))


def test_job_event_stream_is_dense_and_terminal(tmp_path):
    options = SweepOptions(procs=1, cache_dir=tmp_path / "cache")
    with SweepService(options) as service:
        handle = service.submit(n_grid((10, 12)))
        events = list(handle.events())
    assert isinstance(events[0], JobSubmitted)
    assert events[0].cells == 4
    assert isinstance(events[-1], JobDone)
    assert events[-1].status == "done"
    assert (events[-1].hits + events[-1].misses
            + events[-1].shared) == 4
    # per-job seq numbering is dense: a subscriber can detect any loss
    assert [event.seq for event in events] == list(range(len(events)))
    assert all(event.job == handle.job_id for event in events)


# -- cancel ---------------------------------------------------------------


def test_cancel_mid_job_stops_early_and_drops_the_job_file(tmp_path):
    options = SweepOptions(procs=1, cache_dir=tmp_path / "cache")
    with SweepService(options) as service:
        spec = n_grid(range(50, 130), name="cancel-me")  # 160 cells
        handle = service.submit(spec)
        job_file = (tmp_path / "cache" / JOBS_DIR
                    / f"{handle.job_id}.json")
        assert job_file.exists()

        sub = handle.events()
        for event in sub:
            if isinstance(event, CellDone):
                assert handle.cancel()
                break
        with pytest.raises(JobCancelled):
            handle.result(timeout=60)
        assert handle.state == "cancelled"
        # a client cancel is a decision, not an interruption: the job
        # file goes with it, a restart will not resurrect the job
        assert not job_file.exists()
        # cancelled well short of the grid
        assert handle._job.completed < 160
        # cancelling a finished job is a no-op
        assert not handle.cancel()


# -- subscriber backpressure ----------------------------------------------


def test_slow_subscriber_drops_oldest_and_sees_the_seq_gap(tmp_path):
    options = SweepOptions(procs=1, cache_dir=tmp_path / "cache")
    with SweepService(options) as service:
        handle = service.submit(n_grid((10, 12, 14, 16)))
        handle.result(timeout=300)
        total = len(handle._job.events)  # submitted + per-cell + done
        assert total >= 10

        # a subscriber too slow to drain 4 slots: replay overflows it
        sub = handle.events(max_pending=4)
        events = list(sub)
    assert len(events) == 4
    assert sub.dropped == total - 4
    # the loss is visible as a seq gap (nothing was silently skipped)
    assert events[0].seq == total - 4 > 0
    assert [event.seq for event in events] == \
        list(range(total - 4, total))
    # the newest events won: the terminal job-done survived the drops
    assert isinstance(events[-1], JobDone)


# -- drain / resume -------------------------------------------------------


def test_drain_interrupts_and_restart_resumes_without_recompute(tmp_path):
    cache_dir = tmp_path / "cache"
    spec = n_grid(range(50, 210), name="resumable")  # 320 cells
    options = SweepOptions(procs=2, cache_dir=cache_dir)

    first = SweepService(options).start()
    handle = first.submit(spec)
    job_file = cache_dir / JOBS_DIR / f"{handle.job_id}.json"
    sub = handle.events()
    done_before = 0
    for event in sub:
        if isinstance(event, CellDone):
            done_before += 1
            if done_before == 5:
                break
    assert first.drain() == [handle.job_id]
    with pytest.raises(JobCancelled, match="resume"):
        handle.result(timeout=60)
    assert handle.state == "interrupted"
    # the drain preserved the durable job file for the successor
    assert job_file.exists()
    paid_first = paid_keys(handle)
    assert 0 < len(paid_first) < 320
    first.close()

    # a fresh service on the same cache resumes the journaled job
    with SweepService(options) as second:
        rows = second.status()
        assert [row["job"] for row in rows] == [handle.job_id]
        resumed = second.handle(handle.job_id)
        report = resumed.result(timeout=600)
        assert not report.failed
        # every landed cell was recovered, never recomputed
        paid_second = paid_keys(resumed)
        assert not set(paid_first) & set(paid_second)
        assert len(paid_first) + len(paid_second) == 320
    assert not job_file.exists()


# -- the socket surface ---------------------------------------------------


def test_socket_round_trip_submit_watch_result_cancel(tmp_path):
    socket_path = tmp_path / "svc.sock"
    options = SweepOptions(procs=1, cache_dir=tmp_path / "cache")
    with SweepService(options) as service, \
            ServiceServer(service, socket_path):
        client = ServiceClient(socket_path)
        assert client.wait_ready()["jobs"] == 0

        job = client.submit(n_grid((10, 12)).to_json())
        events = list(client.watch(job))
        assert isinstance(events[0], JobSubmitted)
        assert isinstance(events[-1], JobDone)
        assert [event.seq for event in events] == \
            list(range(len(events)))

        row = client.result(job, timeout=60)
        assert row["state"] == "done"
        assert row["completed"] == 4 and row["failed"] == 0
        assert client.status(job)[0]["state"] == "done"
        # cancel after completion reports False, not an error
        assert client.cancel(job) is False

        from repro.lab import ServiceError
        with pytest.raises(ServiceError, match="unknown job"):
            client.status("job-999999")
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "frobnicate"})
