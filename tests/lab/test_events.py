"""The typed event vocabulary: round trips, strict decode, the adapter."""

from __future__ import annotations

import json

import pytest

from repro.lab import (CellDone, CellFailed, CellShared, CellStarted,
                       EventDecodeError, JobDone, JobSubmitted,
                       adapt_progress_callback, event_from_json,
                       event_from_line)
from repro.lab.events import EVENT_SCHEMA_VERSION


ONE_OF_EACH = [
    JobSubmitted(job="job-1", seq=0, spec="grid", cells=4),
    CellStarted(job="job-1", seq=1, key="cell-a", attempt=2),
    CellDone(job="job-1", seq=2, key="cell-a", outcome="ok",
             record={"key": "cell-a", "outcome": "ok"}),
    CellShared(job="job-1", seq=3, key="cell-b", via="concurrent",
               record={"key": "cell-b"}),
    CellFailed(job="job-1", seq=4, key="cell-c", reason="timeout",
               attempts=3, detail="hung"),
    JobDone(job="job-1", seq=5, spec="grid", status="done", hits=1,
            misses=2, shared=1, failed=1),
]


@pytest.mark.parametrize("event", ONE_OF_EACH,
                         ids=lambda e: type(e).__name__)
def test_line_round_trip_is_byte_stable(event):
    line = event.to_line()
    assert "\n" not in line
    decoded = event_from_line(line)
    assert decoded == event
    assert type(decoded) is type(event)
    # canonical encoding: re-encoding reproduces identical bytes
    assert decoded.to_line() == line


def test_events_carry_the_schema_version():
    data = CellDone(key="k").to_json()
    assert data["schema_version"] == EVENT_SCHEMA_VERSION
    assert data["event"] == "cell-done"


def test_schema_version_mismatch_fails_loudly():
    data = CellDone(key="k").to_json()
    data["schema_version"] = EVENT_SCHEMA_VERSION + 1
    with pytest.raises(EventDecodeError, match="schema version"):
        event_from_json(data)


def test_unknown_kind_and_unknown_field_are_rejected():
    with pytest.raises(EventDecodeError, match="unknown event kind"):
        event_from_json({"schema_version": EVENT_SCHEMA_VERSION,
                         "event": "cell-vanished"})
    data = CellDone(key="k").to_json()
    data["surprise"] = 1
    with pytest.raises(EventDecodeError, match="surprise"):
        event_from_json(data)


def test_undecodable_line_is_a_decode_error():
    with pytest.raises(EventDecodeError, match="undecodable"):
        event_from_line("{not json")
    with pytest.raises(EventDecodeError):
        event_from_json(json.loads('["a", "list"]'))


def test_adapter_replays_exactly_the_old_calls():
    """cell-done and concurrent cell-shared fire; everything else not."""
    calls = []
    consume = adapt_progress_callback(
        lambda key, record: calls.append((key, record)))
    for event in ONE_OF_EACH:
        consume(event)
    assert calls == [("cell-a", {"key": "cell-a", "outcome": "ok"}),
                     ("cell-b", {"key": "cell-b"})]
    # warm cache hits never reached the old hook
    consume(CellShared(key="warm", via="cache", record={"key": "warm"}))
    assert len(calls) == 2
