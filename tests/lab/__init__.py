"""Tests for the repro.lab experiment subsystem."""
