"""Storage integrity: envelopes, claims, locks, the doctor, StoreChaos.

The acceptance bar (pinned here and in the ``store-integrity`` CI job):
``repro doctor --repair`` after injected storage corruption restores
the cache to a state from which the next sweep produces a merged store
byte-identical to a never-faulted run.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.lab import (ResultCache, StoreChaos, SweepOptions, SweepSpec,
                       diagnose, run_sweep)
from repro.lab.store import (CLAIMS_DIR, CellClaims, ClaimPolicy,
                             EnvelopeError, JOURNAL_DIR, QUARANTINE_DIR,
                             StoreLock, StoreLockTimeout,
                             durable_append_line, open_envelope,
                             quarantine_file, reap_orphan_tmps,
                             seal_record, tmp_path_for)


def tiny_spec(n=10):
    return SweepSpec.build("tiny", apps=[("fig2.1", {"n": n, "cost": 4})],
                           schemes=["process-oriented"], processors=(2,))


def grid_spec():
    """4 cells: enough files for chaos to pick targets from."""
    return SweepSpec.build(
        "store-grid",
        apps=[("fig2.1", {"n": n, "cost": 4}) for n in (10, 14)],
        schemes=["process-oriented", "statement-oriented"],
        processors=(2,))


# -- envelopes ------------------------------------------------------------


def test_envelope_round_trip():
    record = {"key": "k", "outcome": "ok", "metrics": {"cycles": 7}}
    assert open_envelope(seal_record(record)) == record


def test_envelope_rejects_tampered_payload():
    sealed = seal_record({"key": "k", "outcome": "ok"})
    tampered = sealed.replace('"ok"', '"hacked"')
    with pytest.raises(EnvelopeError) as excinfo:
        open_envelope(tampered)
    assert excinfo.value.kind == "checksum"


def test_envelope_rejects_garbage_and_naked_records():
    with pytest.raises(EnvelopeError) as excinfo:
        open_envelope("{not json")
    assert excinfo.value.kind == "json"
    # a legacy naked record (pre-envelope cache) is a format error,
    # never silently served
    with pytest.raises(EnvelopeError) as excinfo:
        open_envelope(json.dumps({"key": "k", "outcome": "ok"}))
    assert excinfo.value.kind == "format"


def test_corrupt_entry_is_quarantined_not_served(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="f")
    cache.store("deadbeef", {"key": "k", "outcome": "ok"})
    entry = tmp_path / "deadbeef.json"
    data = bytearray(entry.read_bytes())
    data[len(data) // 2] ^= 0x40
    entry.write_bytes(bytes(data))

    assert cache.load("deadbeef") is None
    assert not entry.exists()
    assert cache.quarantined == 1
    quarantined = list((tmp_path / QUARANTINE_DIR).iterdir())
    assert [p.name for p in quarantined] == ["deadbeef.json"]
    # the cell is now a plain miss that a sweep will re-pay
    assert not cache.contains("deadbeef")


def test_quarantine_names_never_collide(tmp_path):
    first = tmp_path / "x.json"
    first.write_text("one")
    moved1 = quarantine_file(tmp_path, first)
    second = tmp_path / "x.json"
    second.write_text("two")
    moved2 = quarantine_file(tmp_path, second)
    assert moved1 != moved2
    assert moved1.read_text() == "one" and moved2.read_text() == "two"


# -- tmp-file hygiene -----------------------------------------------------


def test_tmp_paths_are_unique_per_call(tmp_path):
    target = tmp_path / "entry.json"
    names = {tmp_path_for(target).name for _ in range(64)}
    assert len(names) == 64
    assert all(str(os.getpid()) in name for name in names)


def test_reap_orphans_spares_live_and_kills_dead(tmp_path):
    mine = tmp_path / f"a.json.tmp-{os.getpid()}-0"
    mine.write_text("in flight")
    dead = tmp_path / "b.json.tmp-999999999-0"
    dead.write_text("orphan")
    legacy = tmp_path / "c.json.tmp999999998"
    legacy.write_text("old-style orphan")
    aged = tmp_path / f"d.json.tmp-{os.getpid()}-1"
    aged.write_text("ours but ancient")
    ancient = time.time() - 3600
    os.utime(aged, (ancient, ancient))

    reaped = {p.name for p in reap_orphan_tmps(tmp_path, grace=60.0)}
    assert reaped == {dead.name, legacy.name, aged.name}
    assert mine.exists()


# -- claims ---------------------------------------------------------------


def test_claim_acquire_is_exclusive_until_released(tmp_path):
    a = CellClaims(tmp_path)
    b = CellClaims(tmp_path)
    try:
        assert a.acquire("cell")
        assert not b.acquire("cell")
        a.release("cell")
        assert b.acquire("cell")
    finally:
        a.close()
        b.close()


def test_release_ignores_foreign_claims(tmp_path):
    a = CellClaims(tmp_path)
    b = CellClaims(tmp_path)
    try:
        assert a.acquire("cell")
        b.release("cell")  # b never held it: must not unlink a's claim
        assert (tmp_path / CLAIMS_DIR / "cell.claim").exists()
    finally:
        a.close()
        b.close()


def test_dead_owner_claim_is_taken_over(tmp_path):
    claims = CellClaims(tmp_path, ClaimPolicy(stale_after=3600.0))
    claim_dir = tmp_path / CLAIMS_DIR
    claim_dir.mkdir(parents=True)
    # same host, provably dead pid: stale immediately, no heartbeat wait
    (claim_dir / "cell.claim").write_text(json.dumps(
        {"pid": 2 ** 22 + 1, "host": os.uname().nodename, "key": "cell"}))
    try:
        assert claims.acquire("cell")
    finally:
        claims.close()


def test_silent_heartbeat_claim_goes_stale(tmp_path):
    claims = CellClaims(tmp_path, ClaimPolicy(stale_after=0.05))
    claim_dir = tmp_path / CLAIMS_DIR
    claim_dir.mkdir(parents=True)
    path = claim_dir / "cell.claim"
    # a live pid on another host: only the heartbeat age can decide
    path.write_text(json.dumps(
        {"pid": os.getpid(), "host": "some-other-host", "key": "cell"}))
    old = time.time() - 10.0
    os.utime(path, (old, old))
    try:
        assert claims.reap_stale() == ["cell"]
        assert claims.acquire("cell")
    finally:
        claims.close()


def test_heartbeat_keeps_claim_fresh(tmp_path):
    policy = ClaimPolicy(heartbeat_interval=0.05, stale_after=0.3)
    claims = CellClaims(tmp_path, policy)
    try:
        assert claims.acquire("cell")
        path = tmp_path / CLAIMS_DIR / "cell.claim"
        time.sleep(0.5)  # several staleness horizons of wall clock
        info = claims.peek(key="cell")
        assert info is not None and not claims.is_stale(info)
        assert path.exists()
    finally:
        claims.close()


# -- the merged-store lock ------------------------------------------------


def test_store_lock_excludes_and_releases(tmp_path):
    path = tmp_path / "store.json.lock"
    with StoreLock(path) as _held:
        contender = StoreLock(path, timeout=0.1, stale_after=3600.0,
                              poll=0.01)
        with pytest.raises(StoreLockTimeout):
            contender.acquire()
    # released on exit: the same contender now wins instantly
    contender = StoreLock(path, timeout=0.5, stale_after=3600.0)
    contender.acquire()
    contender.release()


def test_store_lock_breaks_stale_holder(tmp_path):
    path = tmp_path / "store.json.lock"
    path.write_text(json.dumps({"pid": 2 ** 22 + 1,
                                "host": os.uname().nodename}))
    lock = StoreLock(path, timeout=1.0, stale_after=3600.0)
    lock.acquire()  # dead holder broken, not waited out
    lock.release()


# -- StoreChaos -----------------------------------------------------------


def test_store_chaos_is_deterministic(tmp_path):
    run_sweep(grid_spec(), options=SweepOptions(cache_dir=tmp_path))
    import shutil
    clone = tmp_path.parent / "clone"
    shutil.copytree(tmp_path, clone)
    chaos = StoreChaos(seed=5, bit_flips=2, truncations=1, torn_tmps=1,
                       dead_claims=1)
    assert chaos.inject(tmp_path) == chaos.inject(clone)


def test_store_chaos_parse_round_trip():
    chaos = StoreChaos.parse("bit-flips=3,torn-tmps=2,dead-claims=1",
                             seed=9)
    assert chaos.seed == 9
    assert (chaos.bit_flips, chaos.torn_tmps, chaos.dead_claims) == (3, 2, 1)
    assert "bit-flips=3" in chaos.describe()
    with pytest.raises(ValueError):
        StoreChaos.parse("bogus=1")
    with pytest.raises(ValueError):
        StoreChaos(bit_flips=-1)


# -- the doctor -----------------------------------------------------------


def test_doctor_reports_healthy_cache(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(grid_spec(), options=SweepOptions(cache=cache))
    report = diagnose(tmp_path, key_fn=cache.key_for)
    assert report.healthy
    assert report.counts["ok"] == 4
    assert not report.findings
    assert report.to_json()["healthy"] is True


def test_doctor_taxonomy_under_injected_damage(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(grid_spec(), options=SweepOptions(cache=cache))
    durable_append_line(tmp_path / JOURNAL_DIR / "trail.jsonl",
                        '{"cell": "a", "status": "done"}')
    with open(tmp_path / JOURNAL_DIR / "trail.jsonl", "a") as handle:
        handle.write('{"cell": "torn mid-li')
    StoreChaos(seed=3, bit_flips=1, truncations=1, torn_tmps=1,
               dead_claims=1).inject(tmp_path)

    dry = diagnose(tmp_path, key_fn=cache.key_for)
    assert not dry.healthy
    assert dry.counts["corrupt"] == 2
    assert dry.counts["orphaned"] == 1
    assert dry.counts["stale_claims"] == 1
    assert dry.counts["torn_journal_lines"] == 1
    # dry run must not have touched the damaged entries
    statuses = {f.status for f in dry.findings}
    assert statuses == {"corrupt", "orphaned", "stale-claim",
                        "torn-journal"}
    assert all(f.action == "" for f in dry.findings
               if f.status == "corrupt")

    repaired = diagnose(tmp_path, repair=True, key_fn=cache.key_for)
    assert repaired.counts["corrupt"] == 2
    assert repaired.counts["quarantined"] == 2
    assert all(f.action == "quarantined" for f in repaired.findings
               if f.status == "corrupt")
    # journal rewritten without the torn line
    trail = (tmp_path / JOURNAL_DIR / "trail.jsonl").read_text()
    assert all(json.loads(line) for line in trail.splitlines())

    after = diagnose(tmp_path, key_fn=cache.key_for)
    assert after.healthy
    assert after.counts["quarantined"] == 2  # history, not live damage


def test_doctor_repair_restores_byte_identical_resweeps(tmp_path):
    """The acceptance bar: repair -> re-sweep -> bytes match clean run."""
    clean_store = tmp_path / "clean.json"
    run_sweep(grid_spec(), options=SweepOptions(cache_dir=tmp_path / "clean-cache",
              json_path=clean_store))

    cache = ResultCache(tmp_path / "cache")
    run_sweep(grid_spec(), options=SweepOptions(cache=cache))
    StoreChaos(seed=11, bit_flips=2, truncations=1).inject(cache.root)
    report = diagnose(cache.root, repair=True, key_fn=cache.key_for)
    assert report.counts["corrupt"] == 3

    store = tmp_path / "repaired.json"
    resweep = run_sweep(grid_spec(), options=SweepOptions(cache=ResultCache(cache.root),
                        json_path=store))
    # exactly the damaged cells re-simulated, the rest served warm
    assert resweep.misses == 3 and resweep.hits == 1
    assert store.read_bytes() == clean_store.read_bytes()


def test_doctor_flags_stale_schema_entries(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(tiny_spec(), options=SweepOptions(cache=cache))
    entry = next(tmp_path.glob("*.json"))
    record = open_envelope(entry.read_text())
    record["extra_schema_version"] = 0
    entry.write_text(seal_record(record))

    dry = diagnose(tmp_path, key_fn=cache.key_for)
    assert dry.counts["stale"] == 1 and not dry.healthy
    diagnose(tmp_path, repair=True, key_fn=cache.key_for)
    assert not entry.exists()


def test_doctor_flags_unreachable_content_addresses(tmp_path):
    run_sweep(tiny_spec(), options=SweepOptions(cache=ResultCache(tmp_path,
              fingerprint="old")))
    # "edited source tree": the old fingerprint's keys can never be
    # looked up again, so those entries are dead weight
    current = ResultCache(tmp_path, fingerprint="new")
    report = diagnose(tmp_path, key_fn=current.key_for)
    assert report.counts["stale"] == 1
    assert "unreachable" in report.findings[0].detail
