"""Two crash-prone writers, one cache: the multi-writer acceptance bar.

Two concurrent ``run_sweep`` processes sharing one cache over
overlapping grids must produce a merged store byte-identical to a solo
run, with zero duplicated cell simulations (journal-accounted), and a
SIGKILLed writer's claims must be taken over, not waited on forever.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.lab import (CellClaims, ClaimPolicy, ResultCache, SweepOptions,
                       SweepSpec, run_sweep)
from repro.lab.cache import SweepJournal
from repro.lab.store import CLAIMS_DIR, JOURNAL_DIR

REPO_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

#: driver run as a subprocess: one sweep over an n-grid, sharing the
#: cache and merged store with its sibling, reporting what it paid for
DRIVER = """
import json, pathlib, sys
from repro.lab import SweepOptions, SweepSpec, run_sweep

cache_dir, store, out, ns = sys.argv[1:5]
spec = SweepSpec.build(
    "writer", apps=[("fig2.1", {"n": int(n), "cost": 4})
                    for n in ns.split(",")],
    schemes=["process-oriented", "statement-oriented"], processors=(2,))
report = run_sweep(spec, options=SweepOptions(procs=2,
                   cache_dir=pathlib.Path(cache_dir), json_path=pathlib.Path(store),
                   keep_journal=True))
pathlib.Path(out).write_text(json.dumps({
    "hits": report.hits, "misses": report.misses,
    "failed": len(report.failed), "notes": report.notes,
    "simulated": report.simulated_keys,
}))
"""


def overlapping_grids():
    """Two 6-cell grids overlapping on 4 cells (n in {12, 14})."""
    return ("10,12,14", "12,14,16")


def union_spec():
    return SweepSpec.build(
        "writer", apps=[("fig2.1", {"n": n, "cost": 4})
                        for n in (10, 12, 14, 16)],
        schemes=["process-oriented", "statement-oriented"],
        processors=(2,))


def test_concurrent_sweeps_share_one_cache(tmp_path):
    clean_store = tmp_path / "clean.json"
    run_sweep(union_spec(), options=SweepOptions(procs=2,
              cache_dir=tmp_path / "clean-cache", json_path=clean_store))

    driver = tmp_path / "driver.py"
    driver.write_text(DRIVER)
    cache = tmp_path / "cache"
    store = tmp_path / "shared.json"
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    procs, outs = [], []
    for label, ns in zip("ab", overlapping_grids()):
        out = tmp_path / f"report-{label}.json"
        outs.append(out)
        procs.append(subprocess.Popen(
            [sys.executable, str(driver), str(cache), str(store),
             str(out), ns], env=env))
    for proc in procs:
        assert proc.wait(timeout=300) == 0
    reports = [json.loads(out.read_text()) for out in outs]

    # every writer finished whole: 6 cells each, none quarantined
    for report in reports:
        assert report["failed"] == 0
        assert report["hits"] + report["misses"] == 6

    # zero duplicated simulations: the overlapping cells were paid for
    # exactly once across both processes...
    paid = reports[0]["simulated"] + reports[1]["simulated"]
    assert len(paid) == len(set(paid))
    assert len(set(paid)) == 8  # the union grid, each cell once
    # ...and the preserved journals agree (pid-tagged 'done' lines)
    done = []
    for journal in sorted((cache / JOURNAL_DIR).glob("*.jsonl")):
        for entry in SweepJournal(journal).entries():
            if entry.get("status") == "done" and entry.get("simulated"):
                done.append(entry["cell"])
            assert "pid" in entry
    assert sorted(done) == sorted(paid)

    # the shared merged store is byte-identical to the solo run over
    # the union grid -- who paid for a cell never shows in the bytes
    assert store.read_bytes() == clean_store.read_bytes()
    # no claims or tmp garbage left behind
    claims = cache / CLAIMS_DIR
    assert not claims.is_dir() or not list(claims.glob("*.claim"))
    assert not list(cache.glob("*.tmp-*"))


def test_sigkilled_writers_claims_are_taken_over(tmp_path):
    """A SIGKILL mid-cell must not wedge the next sweep on that cell."""
    spec = SweepSpec.build(
        "tiny", apps=[("fig2.1", {"n": 10, "cost": 4})],
        schemes=["process-oriented"], processors=(2,))
    cache = ResultCache(tmp_path)
    key = cache.key_for(spec.cells()[0].config())

    holder = tmp_path / "holder.py"
    holder.write_text(
        "import sys, time\n"
        "from repro.lab import CellClaims\n"
        "claims = CellClaims(sys.argv[1])\n"
        "assert claims.acquire(sys.argv[2])\n"
        "print('claimed', flush=True)\n"
        "time.sleep(600)\n")
    proc = subprocess.Popen(
        [sys.executable, str(holder), str(tmp_path), key],
        env=dict(os.environ, PYTHONPATH=REPO_SRC),
        stdout=subprocess.PIPE)
    assert proc.stdout.readline().strip() == b"claimed"
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    claim = tmp_path / CLAIMS_DIR / f"{key}.claim"
    assert claim.exists()  # SIGKILL leaves the claim file behind

    # dead pid on this host: stale immediately, no staleness horizon
    report = run_sweep(spec, options=SweepOptions(cache=cache,
                       claim_policy=ClaimPolicy(stale_after=3600.0)))
    assert report.misses == 1 and not report.failed
    assert not claim.exists()


def test_live_foreign_claim_is_waited_out_then_taken_over(tmp_path):
    """The wait loop: honor a fresh claim, take it over once stale."""
    spec = SweepSpec.build(
        "tiny", apps=[("fig2.1", {"n": 10, "cost": 4})],
        schemes=["process-oriented"], processors=(2,))
    cache = ResultCache(tmp_path)
    key = cache.key_for(spec.cells()[0].config())
    claim_dir = tmp_path / CLAIMS_DIR
    claim_dir.mkdir(parents=True)
    # a claim that liveness checks cannot settle (foreign host): only
    # the heartbeat's silence can age it into a takeover
    (claim_dir / f"{key}.claim").write_text(json.dumps(
        {"pid": os.getpid(), "host": "some-other-host", "key": key}))

    start = time.monotonic()
    report = run_sweep(spec, options=SweepOptions(cache=cache,
                       claim_policy=ClaimPolicy(stale_after=0.6, wait_timeout=60.0,
                       poll_base=0.05, poll_cap=0.2)))
    waited = time.monotonic() - start
    assert report.misses == 1 and not report.failed
    assert report.notes.get("takeovers") == 1
    assert waited >= 0.6  # it honored the claim while fresh


def test_wait_budget_exhaustion_degrades_to_recompute(tmp_path):
    """A wedged-but-heartbeating claimant cannot stall a sweep forever."""
    spec = SweepSpec.build(
        "tiny", apps=[("fig2.1", {"n": 10, "cost": 4})],
        schemes=["process-oriented"], processors=(2,))
    cache = ResultCache(tmp_path)
    key = cache.key_for(spec.cells()[0].config())

    foreign = CellClaims(tmp_path, ClaimPolicy(heartbeat_interval=0.05))
    # fake a foreign host so the local-pid shortcut cannot reap it
    (tmp_path / CLAIMS_DIR).mkdir(parents=True, exist_ok=True)
    try:
        assert foreign.acquire(key)
        claim = tmp_path / CLAIMS_DIR / f"{key}.claim"
        claim.write_text(json.dumps(
            {"pid": 1, "host": "some-other-host", "key": key}))
        report = run_sweep(spec, options=SweepOptions(cache=cache,
                           claim_policy=ClaimPolicy(heartbeat_interval=0.05,
                           stale_after=3600.0, wait_timeout=1.0, poll_base=0.05,
                           poll_cap=0.2)))
    finally:
        foreign.close()
    assert report.misses == 1 and not report.failed
    assert report.notes.get("forced") == 1
