"""SweepSpec expansion, validation, presets, and JSON round-trips."""

from __future__ import annotations

import json

import pytest

from repro.lab import (SweepOptions, SweepSpec, make_spec, run_sweep,
                       sweep_presets)
from repro.lab.apps import app_names, build_app
from repro.schemes import scheme_names


def test_presets_expand_to_valid_cells():
    for name in sweep_presets():
        spec = make_spec(name)
        cells = spec.cells()
        assert cells, name
        # deterministic expansion: same spec, same order
        assert [c.key for c in cells] == [c.key for c in spec.cells()]
        assert len({c.key for c in cells}) == len(cells)


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown sweep preset"):
        make_spec("nope")


def test_cells_cross_product():
    spec = SweepSpec.build(
        "cross", apps=[("fig2.1", {"n": 8}), ("fig2.1", {"n": 12})],
        schemes=["process-oriented", "statement-oriented"],
        processors=(2, 4), seeds=(0, 1), wait_bounds=(None, 500))
    cells = spec.cells()
    assert len(cells) == 2 * 2 * 2 * 2 * 2
    assert len({c.key for c in cells}) == len(cells)


def test_spec_validates_apps_and_schemes():
    with pytest.raises(ValueError, match="unknown app"):
        SweepSpec.build("bad", apps=[("nope", {})],
                        schemes=["process-oriented"])
    with pytest.raises(ValueError, match="unknown scheme"):
        SweepSpec.build("bad", apps=[("fig2.1", {"n": 8})],
                        schemes=["nope"])
    with pytest.raises(ValueError, match="empty grid"):
        SweepSpec.build("bad", apps=[], schemes=scheme_names())


def test_json_round_trip(tmp_path):
    spec = make_spec("smoke")
    assert SweepSpec.from_json(spec.to_json()) == spec
    assert SweepSpec.from_json(json.dumps(spec.to_json())) == spec
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_json()))
    assert SweepSpec.from_json(path) == spec


def test_with_seed_base_shifts_seeds():
    spec = SweepSpec.build("seeded", apps=[("fig2.1", {"n": 8})],
                           schemes=["process-oriented"], seeds=(0, 1))
    shifted = spec.with_seed_base(10)
    assert shifted.seeds == (10, 11)
    assert spec.with_seed_base(0) is spec
    assert {c.seed for c in shifted.cells()} == {10, 11}


def test_cell_key_is_human_readable():
    spec = SweepSpec.build("keys", apps=[("fig2.1", {"n": 8})],
                           schemes=["process-oriented"],
                           processors=(4,), wait_bounds=(250,))
    (cell,) = spec.cells()
    assert cell.key == "fig2.1(n=8)/process-oriented/p4/self/seed0/wait250"


def test_every_registered_app_builds():
    for name in app_names():
        loop = build_app(name, {})
        assert loop.serial_cycles() > 0, name


def test_build_app_rejects_unknown():
    with pytest.raises(ValueError, match="unknown app"):
        build_app("nope", {})


def test_eliminate_flag_round_trips_and_marks_keys():
    spec = SweepSpec.build("elim", apps=[("fold-chain", {"n": 16})],
                           schemes=["statement-oriented"], eliminate=True)
    assert SweepSpec.from_json(spec.to_json()) == spec
    (cell,) = spec.cells()
    assert cell.eliminate
    assert cell.key.endswith("/elim")
    assert cell.config()["eliminate"] is True
    # the comparison preset opts in; a default-built spec does not
    assert make_spec("scheme-comparison").eliminate
    plain = SweepSpec.build("plain", apps=[("fig2.1", {"n": 8})],
                            schemes=["statement-oriented"])
    (cell,) = plain.cells()
    assert not cell.eliminate and "elim" not in cell.key


def test_auto_scheme_runs_through_compiler(tmp_path):
    spec = SweepSpec.build("auto-one", apps=[("fig2.1", {"n": 10})],
                           schemes=["auto"], processors=(2,))
    report = run_sweep(spec, options=SweepOptions(cache_dir=None))
    (record,) = report.records
    assert record["outcome"] == "ok"
    assert record["compile"]["classification"] == "doacross"
    assert record["compile"]["scheme"] in scheme_names()
