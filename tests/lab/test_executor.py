"""The supervised executor contract: retry, timeout, quarantine, resume.

The acceptance bar (pinned here and in the ``executor-chaos`` CI job):
under injected orchestration faults -- worker crashes, hangs, flaky
exceptions, corrupted results -- the merged sweep store is
byte-identical to a fault-free run at any worker count, and a sweep
interrupted mid-flight resumes recomputing zero completed cells.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.lab import (ExecutionOutcome, ExecutorChaos, IncompleteSweepError,
                       SupervisedExecutor, SweepOptions, SweepSpec, run_sweep)
from repro.lab import runner as runner_module
from repro.lab.executor import backoff_delay


def grid_spec():
    """A 4-cell grid: 2 apps x 2 schemes, cheap enough to retry often."""
    return SweepSpec.build(
        "executor-grid",
        apps=[("fig2.1", {"n": n, "cost": 4}) for n in (10, 14)],
        schemes=["process-oriented", "statement-oriented"],
        processors=(2,))


@pytest.fixture(scope="module")
def clean_bytes(tmp_path_factory):
    """The fault-free merged store, the byte-identity reference."""
    root = tmp_path_factory.mktemp("clean")
    path = root / "clean.json"
    report = run_sweep(grid_spec(), options=SweepOptions(procs=2,
                       cache_dir=root / "cache", json_path=path))
    assert not report.failed
    return path.read_bytes()


# -- retry / backoff determinism --------------------------------------------


def test_backoff_schedule_is_deterministic_and_capped():
    assert backoff_delay(0) == 0.0
    assert backoff_delay(1, base=0.05, cap=2.0) == 0.05
    assert backoff_delay(2, base=0.05, cap=2.0) == 0.10
    assert backoff_delay(3, base=0.05, cap=2.0) == 0.20
    assert backoff_delay(10, base=0.05, cap=2.0) == 2.0
    schedule = [backoff_delay(a) for a in range(1, 8)]
    assert schedule == sorted(schedule)
    assert schedule == [backoff_delay(a) for a in range(1, 8)]


def test_chaos_draws_are_pure_and_order_independent():
    chaos = ExecutorChaos(seed=7, flaky_prob=0.5, crash_prob=0.25)
    keys = [f"cell-{i}" for i in range(32)]
    first = [chaos.draw(key, 0) for key in keys]
    # same draws re-queried in any order, any number of times
    assert [chaos.draw(key, 0) for key in reversed(keys)] == first[::-1]
    # a drawn fault stops firing past fault_attempts
    assert all(chaos.draw(key, 1) is None for key in keys)
    # always_fail fragments fail on every attempt
    sticky = ExecutorChaos(always_fail=("cell-3",))
    assert sticky.draw("cell-3", 99) == "flaky"
    assert sticky.draw("cell-4", 0) is None


def test_chaos_parse_round_trip():
    chaos = ExecutorChaos.parse(
        "crash=0.2,hang=0.1,flaky=0.3,attempts=2,always-fail=frag",
        seed=5)
    assert chaos.seed == 5
    assert chaos.crash_prob == 0.2
    assert chaos.hang_prob == 0.1
    assert chaos.flaky_prob == 0.3
    assert chaos.fault_attempts == 2
    assert chaos.always_fail == ("frag",)
    with pytest.raises(ValueError):
        ExecutorChaos.parse("bogus=1.0")
    with pytest.raises(ValueError):
        ExecutorChaos.parse("crash")
    with pytest.raises(ValueError):
        ExecutorChaos(crash_prob=1.5)


# -- executor semantics, no simulator involved ------------------------------


def _double(item):
    return item * 2


def _fail_on_three(item):
    if item == 3:
        raise ValueError("item 3 always fails")
    return item * 2


def test_inline_path_retries_and_quarantines():
    executor = SupervisedExecutor(_fail_on_three, procs=1, max_retries=1,
                                  backoff_base=0.001)
    outcome = executor.run([1, 2, 3, 4])
    assert outcome.results == {0: 2, 1: 4, 3: 8}
    assert [f.index for f in outcome.failures] == [2]
    assert outcome.failures[0].reason == "error"
    assert outcome.failures[0].attempts == 2
    assert "item 3 always fails" in outcome.failures[0].detail
    assert outcome.attempts[0] == 1 and outcome.attempts[2] == 2


def test_supervised_streams_results_with_index_tags():
    chaos = ExecutorChaos(seed=3, flaky_prob=1.0)
    landed = []
    executor = SupervisedExecutor(_double, procs=2, chaos=chaos,
                                  backoff_base=0.001)
    outcome = executor.run(list(range(6)),
                           keys=[f"cell-{i}" for i in range(6)],
                           on_result=lambda i, key, r: landed.append((i, r)))
    assert outcome.results == {i: i * 2 for i in range(6)}
    assert not outcome.failures
    # every cell failed its first (injected-flaky) attempt
    assert outcome.retries == 6
    assert sorted(landed) == [(i, i * 2) for i in range(6)]


def test_validate_hook_rejects_bad_results():
    executor = SupervisedExecutor(
        _double, procs=1, max_retries=0,
        validate=lambda result, key: ("too big" if result > 4 else None))
    outcome = executor.run([1, 2, 3])
    assert outcome.results == {0: 2, 1: 4}
    assert outcome.failures[0].reason == "bad-result"
    assert outcome.failures[0].detail == "too big"


# -- byte-identity under orchestration faults -------------------------------


@pytest.mark.parametrize("procs", [1, 4, 8])
def test_merged_json_byte_identical_under_faults(tmp_path, clean_bytes,
                                                 procs):
    """Crash + hang + flaky injection must not perturb the store."""
    chaos = ExecutorChaos(seed=11, crash_prob=0.4, hang_prob=0.3,
                          flaky_prob=0.4, hang_seconds=30.0)
    path = tmp_path / f"chaos-{procs}.json"
    report = run_sweep(grid_spec(), options=SweepOptions(procs=procs,
                       cache_dir=tmp_path / f"cache-{procs}", json_path=path,
                       chaos=chaos, cell_timeout=1.0, max_retries=3))
    assert not report.failed
    assert path.read_bytes() == clean_bytes


def test_worker_crash_respawns_and_completes(tmp_path, clean_bytes):
    chaos = ExecutorChaos(seed=1, crash_prob=1.0)
    path = tmp_path / "crash.json"
    report = run_sweep(grid_spec(), options=SweepOptions(procs=2,
                       cache_dir=tmp_path / "cache", json_path=path, chaos=chaos))
    assert not report.failed
    # every cell's first attempt died with the worker
    assert report.notes["retries"] == 4
    assert report.notes["respawns"] >= 4
    assert path.read_bytes() == clean_bytes


def test_corrupted_and_oversized_results_are_retried(tmp_path, clean_bytes):
    for label, chaos in [
            ("corrupt", ExecutorChaos(seed=1, corrupt_prob=1.0)),
            ("oversize", ExecutorChaos(seed=1, oversize_prob=1.0,
                                       oversize_bytes=9 * 2 ** 20))]:
        path = tmp_path / f"{label}.json"
        report = run_sweep(grid_spec(), options=SweepOptions(procs=2,
                           cache_dir=tmp_path / f"cache-{label}", json_path=path,
                           chaos=chaos))
        assert not report.failed, label
        assert report.notes["retries"] == 4, label
        assert path.read_bytes() == clean_bytes, label


# -- per-cell timeout -------------------------------------------------------


def test_hung_worker_is_killed_and_cell_retried(tmp_path, clean_bytes):
    chaos = ExecutorChaos(seed=1, hang_prob=1.0, hang_seconds=60.0)
    path = tmp_path / "hang.json"
    report = run_sweep(grid_spec(), options=SweepOptions(procs=4,
                       cache_dir=tmp_path / "cache", json_path=path, chaos=chaos,
                       cell_timeout=0.8))
    assert not report.failed
    assert report.notes["respawns"] >= 4
    assert path.read_bytes() == clean_bytes


def test_permanent_hang_quarantines_as_timeout(tmp_path):
    spec = SweepSpec.build(
        "one-cell", apps=[("fig2.1", {"n": 10, "cost": 4})],
        schemes=["process-oriented"], processors=(2,))
    chaos = ExecutorChaos(seed=1, hang_prob=1.0, hang_seconds=60.0,
                          fault_attempts=99)
    report = run_sweep(spec, options=SweepOptions(procs=1, cache_dir=tmp_path / "cache",
                       chaos=chaos, cell_timeout=0.5, max_retries=0))
    assert not report.records
    [failure] = report.failed
    assert failure.reason == "timeout"
    assert failure.attempts == 1
    assert "0.5" in failure.detail


# -- quarantine + graceful degradation + resume -----------------------------


def test_quarantine_keeps_rest_of_grid_and_resume_completes(tmp_path,
                                                            clean_bytes):
    cache_dir = tmp_path / "cache"
    path = tmp_path / "store.json"
    chaos = ExecutorChaos(seed=1, always_fail=("statement-oriented",))
    degraded = run_sweep(grid_spec(), options=SweepOptions(procs=2, cache_dir=cache_dir,
                         json_path=path, chaos=chaos, max_retries=1))
    assert degraded.degraded
    assert len(degraded.records) == 2
    assert len(degraded.failed) == 2
    for failure in degraded.failed:
        assert "statement-oriented" in failure.key
        assert failure.attempts == 2
    # the journal survives a degraded run as the durable trail
    journal_files = list((cache_dir / "journal").glob("*.jsonl"))
    assert len(journal_files) == 1
    # successful cells merged, quarantined cells kept out of the store
    merged = json.loads(path.read_text())
    assert len(merged["records"]) == 2

    # resume: the 2 completed cells come from cache, only the 2
    # quarantined cells recompute, and the store converges to the
    # fault-free bytes
    resumed = run_sweep(grid_spec(), options=SweepOptions(procs=2, cache_dir=cache_dir,
                        json_path=path, resume=True))
    assert resumed.hits == 2 and resumed.misses == 2
    assert "resumed" in resumed.notes
    assert not resumed.failed
    assert path.read_bytes() == clean_bytes
    assert not journal_files[0].exists()


def test_interrupt_mid_sweep_preserves_landed_work(tmp_path, clean_bytes):
    cache_dir = tmp_path / "cache"
    seen = []

    def interrupt_after_two(event):
        if event.kind != "cell-done":
            return
        seen.append(event.key)
        if len(seen) == 2:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_sweep(grid_spec(), options=SweepOptions(
            procs=1, cache_dir=cache_dir, chaos=ExecutorChaos(seed=0),
            on_event=interrupt_after_two))
    # the two landed cells were journaled and cached before the
    # interrupt propagated
    journal_files = list((cache_dir / "journal").glob("*.jsonl"))
    assert len(journal_files) == 1

    path = tmp_path / "resumed.json"
    resumed = run_sweep(grid_spec(), options=SweepOptions(procs=2, cache_dir=cache_dir,
                        json_path=path, resume=True))
    assert resumed.hits == 2 and resumed.misses == 2
    assert path.read_bytes() == clean_bytes
    # a fully-successful sweep clears its journal
    assert not journal_files[0].exists()


def test_resume_requires_cache(tmp_path):
    with pytest.raises(ValueError, match="resume"):
        run_sweep(grid_spec(), options=SweepOptions(cache_dir=None, resume=True))


# -- the strict merge guard -------------------------------------------------


def test_lost_cells_raise_typed_error_naming_keys(tmp_path, monkeypatch):
    """A record-less, failure-less cell must fail loudly, never misalign."""
    monkeypatch.setattr(
        runner_module.SupervisedExecutor, "run",
        lambda self, items, keys=None, on_result=None, on_dispatch=None:
        ExecutionOutcome())
    with pytest.raises(IncompleteSweepError) as excinfo:
        run_sweep(grid_spec(), options=SweepOptions(procs=1,
                  cache_dir=tmp_path / "cache"))
    assert len(excinfo.value.missing_keys) == 4
    assert "process-oriented" in str(excinfo.value)


# -- CLI surface ------------------------------------------------------------


def _write_spec(tmp_path):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(grid_spec().to_json()))
    return spec_path


def test_cli_quarantine_exits_3_with_failures_json(tmp_path, capsys):
    spec_path = _write_spec(tmp_path)
    failures_path = tmp_path / "failures.json"
    rc = main(["sweep", "--spec", str(spec_path), "--no-cache",
               "--procs", "2", "--chaos", "always-fail=statement-oriented",
               "--max-retries", "0",
               "--failures-json", str(failures_path)])
    assert rc == 3
    out = capsys.readouterr().out
    assert "DEGRADED" in out
    payload = json.loads(failures_path.read_text())
    assert payload["schema_version"] == 1
    assert len(payload["failures"]) == 2
    assert all("statement-oriented" in failure["key"]
               for failure in payload["failures"])


def test_cli_chaos_run_matches_fault_free_bytes(tmp_path, capsys):
    spec_path = _write_spec(tmp_path)
    base, chaotic = tmp_path / "base.json", tmp_path / "chaos.json"
    assert main(["sweep", "--spec", str(spec_path), "--no-cache",
                 "--procs", "2", "--json", str(base)]) == 0
    assert main(["sweep", "--spec", str(spec_path), "--no-cache",
                 "--procs", "2", "--json", str(chaotic),
                 "--chaos", "crash=0.5,flaky=0.5", "--chaos-seed", "2",
                 "--max-retries", "3"]) == 0
    assert base.read_bytes() == chaotic.read_bytes()


def test_cli_no_cache_really_disables_the_cache(tmp_path, monkeypatch,
                                                capsys):
    """--no-cache must not fall back to the default cache directory."""
    monkeypatch.chdir(tmp_path)
    spec_path = _write_spec(tmp_path)
    assert main(["sweep", "--spec", str(spec_path), "--no-cache"]) == 0
    assert not (tmp_path / ".repro-cache").exists()


def test_cli_resume_conflicts_with_no_cache(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--spec", "smoke", "--no-cache", "--resume"])


def test_cli_rejects_bad_chaos_spec(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--spec", "smoke", "--chaos", "nope=1"])
