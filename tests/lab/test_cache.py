"""The content-addressed result cache: hits, misses, invalidation."""

from __future__ import annotations

import json

from repro.lab import ResultCache, SweepOptions, SweepSpec, run_sweep
from repro.lab.cache import source_fingerprint
from repro.lab.store import open_envelope, seal_record
from repro.lab.record import (RECORD_SCHEMA_VERSION, merge_records,
                              record_is_current)


def tiny_spec(n=10):
    """A one-cell spec small enough to simulate dozens of times."""
    return SweepSpec.build("tiny", apps=[("fig2.1", {"n": n, "cost": 4})],
                           schemes=["process-oriented"], processors=(2,))


def test_hit_on_identical_spec(tmp_path):
    cold = run_sweep(tiny_spec(), options=SweepOptions(cache_dir=tmp_path))
    assert (cold.hits, cold.misses) == (0, 1)
    warm = run_sweep(tiny_spec(), options=SweepOptions(cache_dir=tmp_path))
    assert (warm.hits, warm.misses) == (1, 0)
    assert warm.all_cached
    assert warm.records == cold.records


def test_miss_on_config_change(tmp_path):
    run_sweep(tiny_spec(n=10), options=SweepOptions(cache_dir=tmp_path))
    changed = run_sweep(tiny_spec(n=12), options=SweepOptions(cache_dir=tmp_path))
    assert changed.misses == 1 and changed.hits == 0


def test_miss_on_source_fingerprint_change(tmp_path):
    before = ResultCache(tmp_path, fingerprint="aaaa")
    run_sweep(tiny_spec(), options=SweepOptions(cache=before))
    # same config, same cache dir, "edited" source tree
    after = ResultCache(tmp_path, fingerprint="bbbb")
    report = run_sweep(tiny_spec(), options=SweepOptions(cache=after))
    assert report.misses == 1 and report.hits == 0
    # ...and the original fingerprint still hits
    again = ResultCache(tmp_path, fingerprint="aaaa")
    assert run_sweep(tiny_spec(), options=SweepOptions(cache=again)).all_cached


def test_fingerprint_tracks_source_bytes(tmp_path):
    tree = tmp_path / "pkg"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    first = source_fingerprint(root=tree)
    assert first == source_fingerprint(root=tree)
    (tree / "a.py").write_text("x = 2\n")
    assert source_fingerprint(root=tree) != first


def test_stale_schema_record_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    spec = tiny_spec()
    run_sweep(spec, options=SweepOptions(cache=cache))
    key = cache.key_for(spec.cells()[0].config())
    entry = tmp_path / f"{key}.json"
    record = open_envelope(entry.read_text())
    assert record_is_current(record)

    # a record written by older code (previous extra schema) must be
    # detected and re-simulated, never served
    record["extra_schema_version"] = 0
    entry.write_text(seal_record(record))
    assert not record_is_current(record)
    report = run_sweep(spec, options=SweepOptions(cache=ResultCache(tmp_path)))
    assert report.misses == 1
    reread = open_envelope(entry.read_text())
    assert reread["extra_schema_version"] != 0


def test_merge_drops_stale_store_records(tmp_path):
    store_path = tmp_path / "store.json"
    stale = {"schema_version": RECORD_SCHEMA_VERSION - 1,
             "extra_schema_version": 0, "key": "old", "config": {},
             "outcome": "ok", "metrics": None}
    store_path.write_text(json.dumps(
        {"schema_version": RECORD_SCHEMA_VERSION,
         "records": {"old": stale}}))
    report = run_sweep(tiny_spec(), options=SweepOptions(cache_dir=None,
                       json_path=store_path))
    merged = json.loads(store_path.read_text())
    assert "old" not in merged["records"]
    assert report.records[0]["key"] in merged["records"]


def test_merge_overwrites_same_key(tmp_path):
    store_path = tmp_path / "store.json"
    record = dict(run_sweep(tiny_spec(),
                  options=SweepOptions(cache_dir=None)).records[0])
    merge_records(store_path, [record])
    record2 = dict(record, outcome="later")
    merge_records(store_path, [record2])
    merged = json.loads(store_path.read_text())
    assert len(merged["records"]) == 1
    assert merged["records"][record["key"]]["outcome"] == "later"


def test_cache_counts_hits_and_misses(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(tiny_spec(), options=SweepOptions(cache=cache))
    run_sweep(tiny_spec(), options=SweepOptions(cache=cache))
    assert (cache.hits, cache.misses) == (1, 1)


def test_disabled_cache_always_simulates(tmp_path):
    first = run_sweep(tiny_spec(), options=SweepOptions(cache_dir=None))
    second = run_sweep(tiny_spec(), options=SweepOptions(cache_dir=None))
    assert first.misses == second.misses == 1
    assert first.records == second.records
    assert not list(tmp_path.iterdir())
