"""The RunConfig API and its backward-compatibility shim."""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.schemes import RunConfig, make_scheme, scheme_names
from repro.sim import Machine, MachineConfig


def _fingerprint(result):
    return (result.summary(),
            [(r.commit, r.kind, r.addr, r.value) for r in result.trace])


@pytest.mark.parametrize("name", scheme_names())
def test_legacy_kwargs_and_config_agree(name):
    """Both spellings of run() must return identical RunResults."""
    loop = fig21_loop(n=20)
    machine = Machine(MachineConfig(processors=4))
    via_config = make_scheme(name).run(
        loop, config=RunConfig(machine=machine, validate=True,
                               wait_bound=100_000))
    with pytest.warns(DeprecationWarning, match="RunConfig"):
        via_kwargs = make_scheme(name).run(
            loop, machine=machine, validate=True, wait_bound=100_000)
    assert _fingerprint(via_config) == _fingerprint(via_kwargs)


def test_default_config_matches_no_args():
    loop = fig21_loop(n=12)
    explicit = make_scheme("process-oriented").run(loop,
                                                   config=RunConfig())
    implicit = make_scheme("process-oriented").run(loop)
    assert _fingerprint(explicit) == _fingerprint(implicit)


def test_mixing_config_and_kwargs_rejected():
    loop = fig21_loop(n=8)
    with pytest.raises(TypeError, match="not both"):
        make_scheme("process-oriented").run(
            loop, config=RunConfig(), validate=False)


def test_unknown_kwargs_rejected():
    loop = fig21_loop(n=8)
    with pytest.raises(TypeError, match="unexpected keyword"):
        make_scheme("process-oriented").run(loop, machinery="x")


def test_config_is_frozen_and_hashable():
    config = RunConfig(validate=False, wait_bound=99)
    with pytest.raises(Exception):
        config.validate = True  # type: ignore[misc]
    assert config == RunConfig(validate=False, wait_bound=99)
    assert len({config, RunConfig(validate=False, wait_bound=99)}) == 1
