"""Serial, parallel, and cached sweeps must produce identical bytes."""

from __future__ import annotations

from repro.lab import SweepOptions, SweepSpec, run_sweep
from repro.schemes import scheme_names


def grid_spec():
    """A small multi-cell grid exercising every scheme."""
    return SweepSpec.build(
        "determinism",
        apps=[("fig2.1", {"n": n, "cost": 4}) for n in (10, 14)],
        schemes=scheme_names(), processors=(2,))


def test_parallel_json_byte_identical_to_serial(tmp_path):
    serial_json = tmp_path / "serial.json"
    parallel_json = tmp_path / "parallel.json"
    cached_json = tmp_path / "cached.json"

    serial = run_sweep(grid_spec(), options=SweepOptions(procs=1,
                       cache_dir=tmp_path / "cache-serial", json_path=serial_json))
    parallel = run_sweep(grid_spec(), options=SweepOptions(procs=8,
                         cache_dir=tmp_path / "cache-parallel",
                         json_path=parallel_json))
    cached = run_sweep(grid_spec(), options=SweepOptions(procs=8,
                       cache_dir=tmp_path / "cache-parallel", json_path=cached_json))

    assert serial.misses == parallel.misses == len(grid_spec().cells())
    assert cached.all_cached
    assert serial.records == parallel.records == cached.records
    assert (serial_json.read_bytes() == parallel_json.read_bytes()
            == cached_json.read_bytes())


def test_parallel_preserves_grid_order(tmp_path):
    spec = grid_spec()
    expected = [cell.key for cell in spec.cells()]
    report = run_sweep(spec, options=SweepOptions(procs=4, cache_dir=None))
    assert [record["key"] for record in report.records] == expected


def test_records_carry_no_environment_facts(tmp_path):
    report = run_sweep(grid_spec(), options=SweepOptions(procs=2, cache_dir=None))
    for record in report.records:
        text = str(sorted(record))
        for banned in ("time", "host", "pid", "date"):
            assert banned not in text, (banned, sorted(record))
