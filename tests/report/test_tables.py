"""Table formatting."""

from __future__ import annotations

from repro.report import format_table, summarize_runs
from repro.sim.metrics import RunResult


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["short", 1], ["a-longer-name", 22]],
                        title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[1].startswith("name")
    assert "-----" in lines[2]
    assert len(lines) == 5
    # columns aligned: "value" column starts at same offset everywhere
    offset = lines[1].index("value")
    assert lines[3][offset:offset + 1] == "1"


def test_format_table_no_title():
    text = format_table(["a"], [["x"]])
    assert text.splitlines()[0] == "a"


def test_summarize_runs():
    result = RunResult(makespan=10, processors=[], memory_transactions=0,
                       memory_hotspot=0, sync_transactions=3,
                       covered_writes=0, sync_vars=2, sync_storage_words=2,
                       init_cycles=1)
    text = summarize_runs({"demo": result}, fields=("makespan",
                                                    "sync_vars"))
    assert "demo" in text
    assert "10" in text and "2" in text
