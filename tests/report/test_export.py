"""JSON export of run summaries."""

from __future__ import annotations

import pytest

from repro.apps.kernels import fig21_loop
from repro.report import (compare_results, load_results, save_results)
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig


@pytest.fixture(scope="module")
def runs():
    machine = Machine(MachineConfig(processors=4))
    loop = fig21_loop(n=20)
    return {name: make_scheme(name).run(loop, machine=machine)
            for name in ("statement-oriented", "process-oriented")}


def test_roundtrip(tmp_path, runs):
    path = tmp_path / "results.json"
    save_results(path, runs, metadata={"n": 20, "processors": 4})
    payload = load_results(path)
    assert payload["metadata"]["n"] == 20
    assert set(payload["runs"]) == set(runs)
    for label, result in runs.items():
        assert payload["runs"][label]["makespan"] == result.makespan
        assert payload["runs"][label]["sync_vars"] == result.sync_vars


def test_version_guard(tmp_path):
    path = tmp_path / "old.json"
    path.write_text('{"format_version": 99, "runs": {}}')
    with pytest.raises(ValueError):
        load_results(path)


def test_compare_results(tmp_path, runs):
    path = tmp_path / "base.json"
    save_results(path, runs)
    payload = load_results(path)
    ratios = compare_results(payload, payload)
    assert all(ratio == 1.0 for ratio in ratios.values())
    # a degraded current run shows up as ratio > 1
    slower = {k: dict(v) for k, v in payload["runs"].items()}
    slower["process-oriented"]["makespan"] *= 2
    current = {"format_version": 1, "metadata": {}, "runs": slower}
    ratios = compare_results(payload, current)
    assert ratios["process-oriented"] == 2.0


def test_compare_skips_unknown_runs(runs, tmp_path):
    path = tmp_path / "base.json"
    save_results(path, {"only-one": runs["process-oriented"]})
    baseline = load_results(path)
    save_results(path, runs)
    current = load_results(path)
    ratios = compare_results(baseline, current)
    assert set(ratios) == set()  # no overlap with "only-one"? none match
