"""Timeline rendering and utilization profiles."""

from __future__ import annotations

from repro.apps import PipelinedRelaxation, run_relaxation
from repro.apps.pde import BarrierPDE, run_pde
from repro.barriers import CounterBarrier
from repro.report import render_timeline, utilization_profile
from repro.sim.metrics import RunResult


def test_render_contains_all_processors():
    result = run_relaxation(PipelinedRelaxation(12, group=1), processors=4)
    text = render_timeline(result, width=40)
    for pid in range(4):
        assert f"cpu{pid}" in text
    assert "#" in text            # computation happened
    assert "#=compute" in text    # legend


def test_render_respects_width():
    result = run_relaxation(PipelinedRelaxation(10, group=1), processors=2)
    text = render_timeline(result, width=30)
    rows = [line for line in text.splitlines() if line.startswith("cpu")]
    for row in rows:
        _name, cells = row.split(" ", 1)
        assert len(cells.strip()) <= 31


def test_render_without_activity():
    empty = RunResult(makespan=10, processors=[], memory_transactions=0,
                      memory_hotspot=0, sync_transactions=0,
                      covered_writes=0, sync_vars=0, sync_storage_words=0,
                      init_cycles=0)
    assert "no activity" in render_timeline(empty)


def test_pipeline_profile_has_fill_and_drain():
    """A pipeline ramps up, plateaus, and drains: the middle buckets
    beat the first and last."""
    result = run_relaxation(PipelinedRelaxation(18, group=1), processors=6)
    profile = utilization_profile(result, buckets=6)
    middle = sum(profile[2:4]) / 2
    assert middle > profile[0]
    assert middle > profile[-1]


def test_profile_bounded():
    result = run_relaxation(PipelinedRelaxation(10, group=1), processors=3)
    for value in utilization_profile(result, buckets=5):
        assert 0.0 <= value <= 1.0


def test_spin_visible_for_barrier_workload():
    result = run_pde(BarrierPDE(
        4, 4, lambda region, sweep: 30 + 120 * (region == 0),
        CounterBarrier(4)))
    text = render_timeline(result, width=60)
    assert "~" in text   # the fast regions' barrier waits show up
