"""Basic primitives (Fig. 4.2a): op shapes and boundary behaviour."""

from __future__ import annotations

import pytest

from repro.core.primitives import get_pc, release_pc, set_pc, wait_pc
from repro.core.process_counter import ProcessCounterFile
from repro.sim.ops import SyncWrite, WaitUntil
from repro.sim.sync_bus import BroadcastSyncFabric


@pytest.fixture
def counters():
    pcs = ProcessCounterFile(n_counters=4, first_pid=1)
    pcs.allocate(BroadcastSyncFabric())
    return pcs


def test_set_pc_publishes_step(counters):
    ops = list(set_pc(counters, 2, 3))
    assert len(ops) == 1
    assert isinstance(ops[0], SyncWrite)
    assert ops[0].var == counters.var_of(2)
    assert ops[0].value == (2, 3)


def test_set_pc_rejects_step_zero(counters):
    with pytest.raises(ValueError):
        list(set_pc(counters, 2, 0))


def test_release_pc_hands_to_pid_plus_x(counters):
    ops = list(release_pc(counters, 2))
    assert ops[0].value == (2 + 4, 0)


def test_wait_pc_targets_source_process(counters):
    ops = list(wait_pc(counters, 5, dist=2, step=1))
    assert len(ops) == 1
    wait = ops[0]
    assert isinstance(wait, WaitUntil)
    assert wait.var == counters.var_of(3)   # pid 5 - dist 2
    assert wait.predicate((3, 1))           # source reached the step
    assert wait.predicate((3, 2))           # or beyond
    assert wait.predicate((7, 0))           # or released
    assert not wait.predicate((3, 0))       # not yet
    assert not wait.predicate((2, 9))       # earlier owner irrelevant step


def test_wait_pc_skipped_past_loop_boundary(counters):
    """wait_PC on a source iteration that does not exist emits nothing
    (the boundary rule of section 5)."""
    assert list(wait_pc(counters, 2, dist=5, step=1)) == []
    assert list(wait_pc(counters, 1, dist=1, step=1)) == []


def test_get_pc_waits_for_ownership(counters):
    ops = list(get_pc(counters, 6))
    wait = ops[0]
    assert wait.var == counters.var_of(6)
    assert not wait.predicate((2, 3))   # slot still with process 2
    assert wait.predicate((6, 0))       # ownership arrived
    assert wait.predicate((6, 2))


def test_wait_reasons_are_descriptive(counters):
    wait = list(wait_pc(counters, 5, dist=2, step=1))[0]
    assert "wait_PC(2,1)" in wait.reason
    get = list(get_pc(counters, 5))[0]
    assert "get_PC" in get.reason
