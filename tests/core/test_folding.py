"""Folding arithmetic: power-of-two sizing and the masking rule."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.folding import (choose_counters, is_power_of_two,
                                next_power_of_two, ownership_throttle,
                                slot_mask)


def test_is_power_of_two():
    assert [x for x in range(1, 20) if is_power_of_two(x)] == [1, 2, 4, 8, 16]
    assert not is_power_of_two(0)
    assert not is_power_of_two(-4)


def test_next_power_of_two():
    assert next_power_of_two(0) == 1
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    assert next_power_of_two(8) == 8
    assert next_power_of_two(9) == 16


def test_choose_counters_paper_rule():
    """A power of two, at least multiple * P."""
    assert choose_counters(8) == 16
    assert choose_counters(8, multiple=4) == 32
    assert choose_counters(6) == 16   # 12 -> 16
    assert choose_counters(1, multiple=1) == 1


def test_choose_counters_validation():
    with pytest.raises(ValueError):
        choose_counters(0)
    with pytest.raises(ValueError):
        choose_counters(4, multiple=0)


def test_slot_mask_power_of_two_only():
    assert slot_mask(16) == 15
    assert slot_mask(1) == 0
    with pytest.raises(ValueError):
        slot_mask(12)


@given(st.integers(min_value=0, max_value=10),
       st.integers(min_value=0, max_value=10_000))
def test_mask_equals_modulus(log_x, pid):
    """Taking the low bits of a pid is exactly pid mod X (section 6)."""
    x = 1 << log_x
    assert pid & slot_mask(x) == pid % x


def test_ownership_throttle():
    assert ownership_throttle(16, 8) == 2.0
    assert ownership_throttle(4, 8) == 0.5
    with pytest.raises(ValueError):
        ownership_throttle(0, 8)


@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=8))
def test_choose_counters_properties(processors, multiple):
    x = choose_counters(processors, multiple)
    assert is_power_of_two(x)
    assert x >= multiple * processors
    assert x < 2 * multiple * processors  # smallest such power of two
