"""Process counters: ordering algebra, folding layout, field updates."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.process_counter import (ProcessCounterFile, pc_at_least,
                                        split_owner_first_intermediate)
from repro.sim.ops import SyncWrite
from repro.sim.sync_bus import BroadcastSyncFabric


def pc_values(draw_owner=st.integers(min_value=0, max_value=100),
              draw_step=st.integers(min_value=0, max_value=20)):
    return st.tuples(draw_owner, draw_step)


@given(pc_values(), pc_values())
def test_tuple_order_is_the_papers_order(a, b):
    """<w,x> >= <y,z> iff w > y, or w = y and x >= z."""
    w, x = a
    y, z = b
    paper = w > y or (w == y and x >= z)
    assert (a >= b) == paper
    assert pc_at_least(b)(a) == paper


@given(pc_values(), st.integers(min_value=1, max_value=10),
       st.integers(min_value=1, max_value=20))
def test_release_exceeds_every_step_of_previous_owner(value, x, step):
    """<owner+X, 0> >= <owner, step> for any step: release signals all."""
    owner, _ = value
    assert (owner + x, 0) >= (owner, step)


def test_slot_layout_matches_folding_rule():
    """Processes i, X+i, 2X+i share slot i-1 (0-based), owner starts at
    first_pid + slot."""
    counters = ProcessCounterFile(n_counters=4, first_pid=1)
    assert counters.slot(1) == 0
    assert counters.slot(5) == 0
    assert counters.slot(9) == 0
    assert counters.slot(4) == 3
    assert counters.initial_owner(0) == 1
    assert counters.initial_owner(3) == 4


def test_slot_layout_with_offset_first_pid():
    counters = ProcessCounterFile(n_counters=4, first_pid=2)
    assert counters.slot(2) == 0
    assert counters.slot(6) == 0
    assert counters.initial_owner(0) == 2


def test_validation():
    with pytest.raises(ValueError):
        ProcessCounterFile(n_counters=0)
    with pytest.raises(ValueError):
        ProcessCounterFile(n_counters=2, split_order="sideways")


def test_allocation_and_initial_values():
    counters = ProcessCounterFile(n_counters=3, first_pid=1)
    fabric = BroadcastSyncFabric()
    counters.allocate(fabric)
    assert counters.value_of(1) == (1, 0)
    assert counters.value_of(2) == (2, 0)
    assert counters.value_of(3) == (3, 0)
    assert counters.value_of(4) == (1, 0)  # folds onto slot 0
    assert fabric.storage_words == 3


def test_split_fields_allocates_two_words_each():
    counters = ProcessCounterFile(n_counters=3, split_fields=True)
    fabric = BroadcastSyncFabric()
    counters.allocate(fabric)
    assert fabric.storage_words == 6


def test_unallocated_use_raises():
    counters = ProcessCounterFile(n_counters=2)
    with pytest.raises(RuntimeError):
        counters.var_of(1)
    with pytest.raises(RuntimeError):
        counters.value_of(1)


def ops_of(gen):
    return list(gen)


def test_write_step_is_one_coverable_write():
    counters = ProcessCounterFile(n_counters=2)
    counters.allocate(BroadcastSyncFabric())
    ops = ops_of(counters.write_step(1, 3))
    assert len(ops) == 1
    assert isinstance(ops[0], SyncWrite)
    assert ops[0].value == (1, 3)
    assert ops[0].coverable


def test_write_release_atomic_mode():
    counters = ProcessCounterFile(n_counters=4)
    counters.allocate(BroadcastSyncFabric())
    ops = ops_of(counters.write_release(3))
    assert len(ops) == 1
    assert ops[0].value == (7, 0)
    assert not ops[0].coverable


def test_write_release_split_step_first():
    """Safe order: <i, j> -> <i, 0> -> <i+X, 0>."""
    counters = ProcessCounterFile(n_counters=4, split_fields=True,
                                  split_order="step_first")
    counters.allocate(BroadcastSyncFabric())
    ops = ops_of(counters.write_release(3, current_step=2))
    assert [op.value for op in ops] == [(3, 0), (7, 0)]


def test_write_release_split_owner_first_exposes_hazard():
    """Unsafe order: the transient <i+X, old step> satisfies waits for
    early steps of process i+X that has not run."""
    counters = ProcessCounterFile(n_counters=4, split_fields=True,
                                  split_order="owner_first")
    counters.allocate(BroadcastSyncFabric())
    ops = ops_of(counters.write_release(3, current_step=2))
    assert [op.value for op in ops] == [(7, 2), (7, 0)]
    transient = ops[0].value
    # the hazard: a wait for <7, 1> passes although process 7 never ran
    assert pc_at_least((7, 1))(transient)
    assert split_owner_first_intermediate((3, 2), 7) == transient


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=5))
def test_slot_chain_values_monotone(x, pid, steps):
    """The value sequence a slot takes is strictly increasing: steps of
    one owner, then the next owner at step 0 -- the property that makes
    folding safe for any X (module docstring of repro.core.folding)."""
    chain = []
    owner = 1 + (pid - 1) % x
    for _round in range(3):
        for step in range(steps + 1):
            chain.append((owner, step))
        owner += x
    assert chain == sorted(chain)
    for earlier, later in zip(chain, chain[1:]):
        assert later >= earlier
