"""Synchronization planning: the plan must reproduce Fig. 4.2(b)."""

from __future__ import annotations

from repro.core.codegen import build_sync_plan
from repro.depend.graph import DependenceGraph


def test_fig42b_plan_exact(fig21):
    """Source numbering S1=1, S2=2, S3=3, S4=last; waits exactly as the
    paper's transformed loop."""
    plan = build_sync_plan(fig21)
    assert plan.step_of == {"S1": 1, "S2": 2, "S3": 3, "S4": 4}
    assert plan.n_sources == 4
    assert plan.last_source == "S4"

    by_sid = {p.sid: p for p in plan.statements}
    assert [(w.dist, w.step) for w in by_sid["S1"].waits] == []
    assert [(w.dist, w.step) for w in by_sid["S2"].waits] == [(2, 1)]
    assert [(w.dist, w.step) for w in by_sid["S3"].waits] == [(1, 1)]
    assert [(w.dist, w.step) for w in by_sid["S4"].waits] == [(1, 2), (2, 3)]
    assert [(w.dist, w.step) for w in by_sid["S5"].waits] == [(1, 4)]

    assert by_sid["S1"].source_step == 1 and not by_sid["S1"].is_last_source
    assert by_sid["S4"].source_step == 4 and by_sid["S4"].is_last_source
    assert by_sid["S5"].source_step is None


def test_pseudocode_matches_fig42b_shape(fig21):
    text = build_sync_plan(fig21).pseudocode()
    for fragment in ("set_PC(1)", "wait_PC(2, 1)", "set_PC(2)",
                     "wait_PC(1, 1)", "set_PC(3)", "wait_PC(1, 2)",
                     "wait_PC(2, 3)", "release_PC()", "wait_PC(1, 4)"):
        assert fragment in text, f"missing {fragment} in:\n{text}"
    assert text.count("release_PC") == 1


def test_prune_none_keeps_covered_arcs(fig21):
    pruned = build_sync_plan(fig21, prune="exact")
    full = build_sync_plan(fig21, prune="none")
    assert len(full.arcs) == 7
    assert len(pruned.arcs) == 5
    # the covered S1->S4 wait appears only in the unpruned plan
    s4_full = next(p for p in full.statements if p.sid == "S4")
    assert (3, 1) in [(w.dist, w.step) for w in s4_full.waits]


def test_sink_before_source_ordering(recurrence):
    """A[i] = A[i-1]: the single statement is both sink and source; the
    plan puts the wait before and the release after."""
    plan = build_sync_plan(recurrence)
    stmt = plan.statements[0]
    assert [(w.dist, w.step) for w in stmt.waits] == [(1, 1)]
    assert stmt.is_last_source


def test_doall_plan_is_empty(doall):
    plan = build_sync_plan(doall)
    assert plan.n_sources == 0
    assert plan.last_source is None
    assert all(not p.waits and p.source_step is None
               for p in plan.statements)


def test_max_wait_distance(fig21, doall):
    assert build_sync_plan(fig21).max_wait_distance == 2
    assert build_sync_plan(doall).max_wait_distance == 0


def test_waits_reference_source_sids(fig21):
    plan = build_sync_plan(fig21)
    for statement_plan in plan.statements:
        for wait in statement_plan.waits:
            assert plan.step_of[wait.src] == wait.step


def test_nested_plan_uses_linear_distances(nested):
    plan = build_sync_plan(nested)
    m = nested.extents[1]
    by_sid = {p.sid: p for p in plan.statements}
    assert [(w.dist, w.step) for w in by_sid["S2"].waits] == [(1, 1)]
    assert [(w.dist, w.step) for w in by_sid["S3"].waits] == [(m + 1, 2)]


def test_plan_with_explicit_graph(fig21):
    graph = DependenceGraph(fig21)
    plan = build_sync_plan(fig21, graph=graph)
    assert plan.step_of["S1"] == 1
