"""Improved primitives (Fig. 4.3): deferred ownership, mark skipping."""

from __future__ import annotations

import pytest

from repro.core.improved import ImprovedPrimitives
from repro.core.process_counter import ProcessCounterFile
from repro.sim import (BroadcastSyncFabric, Compute, Engine, SharedMemory)


def run_procs(counters, *gens):
    fabric = BroadcastSyncFabric()
    counters.allocate(fabric)
    engine = Engine(SharedMemory(), fabric)
    stats = [engine.spawn(gen(), name=f"p{i}")
             for i, gen in enumerate(gens)]
    engine.run()
    return fabric, stats


def test_mark_skips_before_ownership_arrives():
    """Process 5 on a 4-counter file: slot owned by process 1 until it
    releases; an early mark_PC must skip, the transfer must still
    complete everything."""
    counters = ProcessCounterFile(n_counters=4, first_pid=1)
    p5 = {}

    def process5():
        primitives = ImprovedPrimitives(counters, 5)
        yield from primitives.mark_pc(1)     # ownership not arrived: skip
        p5["skipped_after_first"] = primitives.skipped_marks
        yield Compute(100)                   # process 1 releases meanwhile
        yield from primitives.mark_pc(2)     # now owned: publishes
        p5["owned"] = primitives.owned
        yield from primitives.transfer_pc()

    def process1():
        primitives = ImprovedPrimitives(counters, 1)
        yield Compute(10)
        yield from primitives.mark_pc(1)
        yield from primitives.transfer_pc()  # hands slot to process 5

    fabric, _stats = run_procs(counters, process5, process1)
    assert p5["skipped_after_first"] == 1
    assert p5["owned"] is True
    # after process 5's transfer, the slot belongs to process 9
    assert counters.value_of(5) == (9, 0)


def test_transfer_acquires_if_never_owned():
    """A process whose marks all skipped still transfers correctly: the
    transfer first waits for ownership."""
    counters = ProcessCounterFile(n_counters=2, first_pid=1)
    order = []

    def process3():
        primitives = ImprovedPrimitives(counters, 3)
        yield from primitives.mark_pc(1)     # skipped: owner is 1
        order.append(("p3_marked", primitives.owned))
        yield from primitives.transfer_pc()  # blocks until p1 releases
        order.append(("p3_transferred", True))

    def process1():
        primitives = ImprovedPrimitives(counters, 1)
        yield Compute(50)
        yield from primitives.transfer_pc()
        order.append(("p1_transferred", True))

    run_procs(counters, process3, process1)
    assert ("p3_marked", False) in order
    assert order.index(("p1_transferred", True)) < order.index(
        ("p3_transferred", True))
    assert counters.value_of(3) == (5, 0)


def test_initial_owner_marks_immediately():
    counters = ProcessCounterFile(n_counters=4, first_pid=1)

    def process2():
        primitives = ImprovedPrimitives(counters, 2)
        yield from primitives.mark_pc(1)
        assert primitives.owned
        assert primitives.skipped_marks == 0
        yield from primitives.transfer_pc()

    run_procs(counters, process2)
    assert counters.value_of(2) == (6, 0)


def test_mark_rejects_step_zero():
    counters = ProcessCounterFile(n_counters=2)
    counters.allocate(BroadcastSyncFabric())
    primitives = ImprovedPrimitives(counters, 1)
    with pytest.raises(ValueError):
        list(primitives.mark_pc(0))


def test_marks_track_last_step():
    counters = ProcessCounterFile(n_counters=2, first_pid=1)

    def process1():
        primitives = ImprovedPrimitives(counters, 1)
        yield from primitives.mark_pc(1)
        yield from primitives.mark_pc(2)
        assert primitives.last_step == 2
        yield from primitives.transfer_pc()

    run_procs(counters, process1)
