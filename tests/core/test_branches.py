"""Step cursor: branch-path equalization (Example 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.branches import StepCursor, publication_schedule


def test_all_executed_publishes_each_nonfinal_step():
    assert publication_schedule((True, True, True)) == [1, 2, None]


def test_eager_publishes_skipped_steps():
    """Paper: "mark_PC(3), though not required, is added as the first
    statement in branch B" -- the skipped position is published."""
    assert publication_schedule((True, False, True, True),
                                eager=True) == [1, 2, 3, None]


def test_lazy_skips_ride_on_next_executed_source():
    """Lazy: a skipped step is covered by the next executed source's
    higher step ("after Sd in branch C, mark_PC(3) is executed instead
    of mark_PC(2)")."""
    assert publication_schedule((True, False, True, True),
                                eager=False) == [1, None, 3, None]


def test_lazy_trailing_skips_fall_to_transfer():
    assert publication_schedule((True, False, False),
                                eager=False) == [1, None, None]


def test_eager_never_republishes():
    """A published step is not re-published by a later skip."""
    cursor = StepCursor(n_sources=4, eager=True)
    assert cursor.advance(True) == 1
    assert cursor.advance(True) == 2
    assert cursor.advance(False) == 3
    assert cursor.advance(False) is None  # last position: transfer's job
    assert cursor.finished
    assert cursor.published == 3


def test_last_position_never_published():
    for mask in [(True,), (False,), (True, True), (True, False)]:
        assert publication_schedule(mask)[-1] is None


def test_advance_past_end_raises():
    cursor = StepCursor(n_sources=1)
    cursor.advance(True)
    with pytest.raises(RuntimeError):
        cursor.advance(True)


def test_not_finished_midway():
    cursor = StepCursor(n_sources=3)
    cursor.advance(True)
    assert not cursor.finished


@given(st.lists(st.booleans(), min_size=1, max_size=10), st.booleans())
def test_published_steps_strictly_increasing(mask, eager):
    """Published step values are strictly increasing and bounded by the
    source count -- the monotonicity the PC hardware relies on."""
    schedule = publication_schedule(tuple(mask), eager=eager)
    published = [s for s in schedule if s is not None]
    assert all(b > a for a, b in zip(published, published[1:]))
    assert all(1 <= s < len(mask) + 1 for s in published)
    assert schedule[-1] is None


@given(st.lists(st.booleans(), min_size=2, max_size=10))
def test_eager_covers_every_executed_prefix(mask):
    """Eager mode: after passing source position k, the published value
    is at least the number of positions passed (minus the final one) --
    so no sink ever waits on a passed position."""
    cursor = StepCursor(n_sources=len(mask), eager=True)
    for position, executed in enumerate(mask[:-1], start=1):
        cursor.advance(executed)
        assert cursor.published == position
