"""Coalescing accounting: extra dependences, boundary-check cost."""

from __future__ import annotations

from repro.core.linearize import (boundary_check_cost, coalesced_iterations,
                                  extra_dependences)
from repro.depend.graph import DependenceGraph
from repro.apps.kernels import example2_loop, fig21_loop


def test_extra_dependences_example2():
    """N=4, M=3: S1->S2 at (0,1) has M-boundary waits on (i, 1) sinks;
    S2->S3 at (1,1) crosses rows."""
    n, m = 4, 3
    loop = example2_loop(n=n, m=m)
    graph = DependenceGraph(loop)
    reports = {r.dependence: r for r in extra_dependences(loop, graph)}

    s12 = next(v for k, v in reports.items() if k.startswith("S1->S2"))
    # true sinks: every (i, j>=2) -> N*(M-1); extra: (i, 1) for i>=2
    # (lpid > 1): N-1 spurious waits on the previous row's last column
    assert s12.linear_distance == 1
    assert s12.true_instances == n * (m - 1)
    assert s12.extra_instances == n - 1

    s23 = next(v for k, v in reports.items() if k.startswith("S2->S3"))
    # distance M+1: sinks at lpid > M+1; true ones need j >= 2
    assert s23.linear_distance == m + 1
    assert s23.true_instances == (n - 1) * (m - 1)
    assert s23.extra_instances == (n - 1) * 1 - 1  # (i,1) rows, lpid > M+1


def test_extra_dependences_zero_for_single_level():
    loop = fig21_loop(n=10)
    graph = DependenceGraph(loop)
    for report in extra_dependences(loop, graph):
        assert report.extra_instances == 0


def test_boundary_check_cost_scales_with_refs_and_depth():
    nested = example2_loop(n=4, m=3)      # 4 refs, depth 2
    flat = fig21_loop(n=10)               # 5 refs, depth 1
    assert boundary_check_cost(nested, per_check=2) == 2 * 4 * 2
    assert boundary_check_cost(flat, per_check=2) == 2 * 5 * 1


def test_coalesced_iterations_dense():
    loop = example2_loop(n=3, m=4)
    assert coalesced_iterations(loop) == list(range(1, 13))
