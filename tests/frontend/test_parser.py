"""Mini-Fortran front-end: the paper's loops parse to the right IR."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.apps.kernels import fig21_loop
from repro.depend import DependenceGraph
from repro.frontend import ParseError, parse_affine, parse_loop

FIG21 = """
DO I = 1, N
  S1: A(I+3) = ...
  S2: ...    = A(I+1)
  S3: ...    = A(I+2)
  S4: A(I)   = ...
  S5: ...    = A(I-1)
END DO
"""

EXAMPLE2 = """
DO I = 1, N
  DO J = 1, M
    S1: A(I,J) = ...
    S2: B(I,J) = A(I,J-1)
    S3: C(I,J) = B(I-1,J-1)
  END DO
END DO
"""


def test_fig21_parses_to_the_same_graph():
    parsed = parse_loop(FIG21, N=30)
    built = fig21_loop(n=30)
    parsed_arcs = {str(a) for a in DependenceGraph(parsed).sync_arcs()}
    built_arcs = {str(a) for a in DependenceGraph(built).sync_arcs()}
    assert parsed_arcs == built_arcs
    assert [s.sid for s in parsed.body] == ["S1", "S2", "S3", "S4", "S5"]
    assert parsed.bounds == ((1, 30),)


def test_nested_parse_matches_kernel():
    parsed = parse_loop(EXAMPLE2, N=6, M=4)
    assert parsed.depth == 2
    assert parsed.bounds == ((1, 6), (1, 4))
    arcs = {(a.src, a.dst, a.distance)
            for a in DependenceGraph(parsed).sync_arcs()}
    assert arcs == {("S1", "S2", 1), ("S2", "S3", 5)}


def test_shapes_inferred_to_cover_accesses():
    parsed = parse_loop(EXAMPLE2, N=6, M=4)
    for array in ("A", "B", "C"):
        shape = parsed.array_shapes[array]
        assert shape[0] >= 7 and shape[1] >= 5


def test_unlabelled_statements_get_positional_ids():
    loop = parse_loop("DO I = 1, 4\n  A(I) = B(I)\n  C(I) = A(I-1)\nEND DO")
    assert [s.sid for s in loop.body] == ["S1", "S2"]


def test_comments_and_blank_lines_ignored():
    loop = parse_loop("""
    DO I = 1, 4   ! outer loop

      A(I) = ...  ! a write
    END DO
    """)
    assert len(loop.body) == 1


def test_numeric_and_symbolic_bounds():
    loop = parse_loop("DO K = 2, LIMIT\n  A(K) = A(K-1)\nEND DO", LIMIT=9)
    assert loop.bounds == ((2, 9),)


def test_parsed_loop_simulates():
    from repro.schemes import make_scheme
    loop = parse_loop(FIG21, N=20)
    result = make_scheme("process-oriented").run(loop)
    assert result.makespan > 0


def test_parse_affine_terms():
    assert parse_affine("I+3", ["I"]).eval((5,)) == 8
    assert parse_affine("2*I-1", ["I"]).eval((5,)) == 9
    assert parse_affine("I - J + 2", ["I", "J"]).eval((5, 3)) == 4
    assert parse_affine("-I", ["I"]).eval((5,)) == -5
    assert parse_affine("7", ["I"]).eval((5,)) == 7


@pytest.mark.parametrize("bad, message", [
    ("DO I = 1, 4\n  A(I) = ...\n", "unclosed"),
    ("A(I) = ...\n", "outside"),
    ("DO I = 1, 4\nEND DO\n", "no statements"),
    ("DO I = 1, Q\n  A(I) = ...\nEND DO", "unbound"),
    ("DO I = 1, 4\n  A(I*I) = ...\nEND DO", "unsupported"),
    ("DO I = 1, 4\n  A(K) = ...\nEND DO", "unknown index"),
    ("DO I = 1, 4\n  S: A(I)\nEND DO", "no assignment"),
    ("DO I = 1, 4\n  A(I) = ...\nEND DO\nX(I) = ...", "after the outermost"),
    ("END DO", "without DO"),
    ("DO I = 1, 4\n  A(I) = ...\n  DO J = 1, 2\n  B(J) = ...\n  END DO\n"
     "END DO", "perfect nests"),
])
def test_parse_errors(bad, message):
    with pytest.raises(ParseError) as excinfo:
        parse_loop(bad)
    assert message in str(excinfo.value)


@given(st.integers(min_value=-9, max_value=9),
       st.integers(min_value=-9, max_value=9))
def test_affine_roundtrip_offsets(coefficient, const):
    if coefficient == 0:
        text = str(const)
    else:
        sign = "" if const >= 0 else "-"
        text = f"{coefficient}*I{sign and '-' or '+'}{abs(const)}" \
            if const else f"{coefficient}*I"
        text = f"{coefficient}*I+{const}" if const >= 0 else \
            f"{coefficient}*I-{abs(const)}"
    expr = parse_affine(text, ["I"])
    assert expr.eval((3,)) == coefficient * 3 + const


def test_parse_program_splits_nests():
    from repro.frontend import parse_program
    loops = parse_program("""
! name: one
DO I = 1, 4
  A(I) = ...
END DO
DO I = 1, 3
  DO J = 1, 2
    B(I,J) = B(I-1,J)
  END DO
END DO
""")
    assert [loop.name for loop in loops] == ["one", "L2"]
    assert loops[1].depth == 2


def test_parse_program_errors():
    from repro.frontend import parse_program
    with pytest.raises(ParseError):
        parse_program("DO I = 1, 4\n  A(I) = ...\n")   # unterminated
    with pytest.raises(ParseError):
        parse_program("! just a comment\n")            # no nests
