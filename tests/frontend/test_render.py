"""Render/parse round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.apps.kernels import example2_loop, fig21_loop, recurrence_loop
from repro.depend import DependenceGraph
from repro.depend.model import AffineExpr, Loop, Statement, ref1
from repro.frontend import (parse_affine, parse_loop, render_affine,
                            render_loop, render_statement)


@pytest.mark.parametrize("loop", [fig21_loop(8), example2_loop(4, 3),
                                  recurrence_loop(6)])
def test_roundtrip_preserves_dependence_structure(loop):
    text = render_loop(loop)
    reparsed = parse_loop(text, array_shapes=dict(loop.array_shapes))
    original = {str(a) for a in DependenceGraph(loop).sync_arcs()}
    roundtrip = {str(a) for a in DependenceGraph(reparsed).sync_arcs()}
    assert original == roundtrip
    assert reparsed.bounds == loop.bounds
    assert [s.sid for s in reparsed.body] == [s.sid for s in loop.body]


def test_render_statement_shapes():
    stmt = Statement("S1", writes=(ref1("A", 1, 3),),
                     reads=(ref1("B", 1, -1),))
    assert render_statement(stmt) == "S1: A(I+3) = B(I-1)"
    bare_read = Statement("S2", reads=(ref1("A", 1, 0),))
    assert render_statement(bare_read) == "S2: ... = A(I)"
    bare_write = Statement("S3", writes=(ref1("A", 1, 0),))
    assert render_statement(bare_write) == "S3: A(I) = ..."


def test_guarded_loops_rejected():
    body = [Statement("S", writes=(ref1("A", 1, 0),),
                      guard=lambda index: True)]
    loop = Loop("g", bounds=((1, 3),), body=body)
    with pytest.raises(ValueError):
        render_loop(loop)


@given(st.lists(st.integers(min_value=-5, max_value=5), min_size=1,
                max_size=3),
       st.integers(min_value=-9, max_value=9))
def test_affine_render_parse_roundtrip(coefs, const):
    expr = AffineExpr(tuple(coefs), const)
    names = ["I", "J", "K"][:len(coefs)]
    text = render_affine(expr)
    reparsed = parse_affine(text, names)
    probe = tuple(range(2, 2 + len(coefs)))
    assert reparsed.eval(probe) == expr.eval(probe)


@given(st.data())
def test_random_loop_roundtrip(data):
    """Generate a random constant-offset loop, render, parse, compare."""
    n_statements = data.draw(st.integers(min_value=1, max_value=4))
    body = []
    for position in range(n_statements):
        writes = ()
        reads = ()
        if data.draw(st.booleans()):
            writes = (ref1(data.draw(st.sampled_from(["A", "B"])), 1,
                           data.draw(st.integers(-3, 3))),)
        if data.draw(st.booleans()) or not writes:
            reads = (ref1(data.draw(st.sampled_from(["A", "B"])), 1,
                          data.draw(st.integers(-3, 3))),)
        body.append(Statement(f"S{position}", writes=writes, reads=reads))
    loop = Loop("rand", bounds=((1, data.draw(st.integers(4, 12))),),
                body=body)
    reparsed = parse_loop(render_loop(loop))
    original = {str(d) for d in DependenceGraph(loop).dependences}
    roundtrip = {str(d) for d in DependenceGraph(reparsed).dependences}
    assert original == roundtrip
