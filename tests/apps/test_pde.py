"""Example 5 (PDE case): neighbour sync vs global barrier per sweep."""

from __future__ import annotations

import pytest

from repro.apps.pde import (BarrierPDE, NeighborPDE, check_solution,
                            reference_solution, run_pde)
from repro.barriers import CounterBarrier, PCDisseminationBarrier
from repro.sim import ValidationError


def balanced(region, sweep):
    return 50


def roaming_hotspot(region, sweep):
    """A different region is slow each sweep (transient imbalance)."""
    return 50 + 200 * (region == sweep % 12)


@pytest.mark.parametrize("regions", [2, 3, 8, 12])
def test_neighbor_pde_correct(regions):
    run_pde(NeighborPDE(regions, sweeps=6, sweep_cost=balanced))


@pytest.mark.parametrize("regions", [4, 12])
def test_barrier_pde_correct(regions):
    run_pde(BarrierPDE(regions, 6, balanced, CounterBarrier(regions)))
    run_pde(BarrierPDE(regions, 6, balanced,
                       PCDisseminationBarrier(regions)))


def test_neighbor_needs_two_regions():
    with pytest.raises(ValueError):
        NeighborPDE(1, sweeps=3, sweep_cost=balanced)


def test_barrier_width_must_match():
    with pytest.raises(ValueError):
        BarrierPDE(8, 3, balanced, CounterBarrier(4))


def test_neighbor_beats_barrier_under_transient_imbalance():
    """The paper's point: local communication only needs local waiting.
    A roaming slow region delays only its neighbours under neighbour
    sync, but everyone under a barrier."""
    regions, sweeps = 12, 12
    neighbor = run_pde(NeighborPDE(regions, sweeps, roaming_hotspot))
    barrier = run_pde(BarrierPDE(regions, sweeps, roaming_hotspot,
                                 PCDisseminationBarrier(regions)))
    assert neighbor.makespan < barrier.makespan
    assert neighbor.total_spin < barrier.total_spin


def test_sync_vars():
    assert NeighborPDE(10, 3, balanced).sync_vars == 10


def test_reference_solution_chains():
    values = reference_solution(3, 2)
    from repro.apps.pde import region_address, region_value
    expected = region_value(
        1, 2,
        values[region_address(0, 1)],
        values[region_address(1, 1)],
        values[region_address(2, 1)])
    assert values[region_address(1, 2)] == expected


def test_check_solution_catches_corruption():
    result = run_pde(NeighborPDE(4, 3, balanced))
    addr = next(iter(reference_solution(4, 3)))
    result.final_memory[addr] = -1
    with pytest.raises(ValidationError):
        check_solution(4, 3, result)


def test_boundary_regions_have_one_neighbour():
    """Non-periodic domain: region 0 never waits on region -1."""
    workload = NeighborPDE(4, 3, balanced)
    result = run_pde(workload)
    # region 0 and 3 wait once per sweep; inner regions twice
    assert result.makespan > 0
