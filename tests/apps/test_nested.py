"""Example 2: implicit coalescing vs per-element boundary handling."""

from __future__ import annotations

from repro.apps.kernels import example2_loop
from repro.apps.nested import (run_nested, with_boundary_overhead)
from repro.core.linearize import boundary_check_cost
from repro.schemes import make_scheme


def test_with_boundary_overhead_inflates_first_statement():
    loop = example2_loop(n=4, m=3)
    inflated = with_boundary_overhead(loop, per_check=2)
    overhead = boundary_check_cost(loop, per_check=2)
    base = loop.body[0].cost_at((1, 1))
    assert inflated.body[0].cost_at((1, 1)) == base + overhead
    # other statements untouched
    assert inflated.body[1].cost_at((1, 1)) == loop.body[1].cost_at((1, 1))
    # dependence structure preserved
    assert [s.sid for s in inflated.body] == [s.sid for s in loop.body]


def test_process_oriented_no_boundary_overhead():
    report = run_nested(example2_loop(n=5, m=4),
                        make_scheme("process-oriented"), processors=4)
    assert report.boundary_overhead_per_iteration == 0
    assert report.result.makespan > 0


def test_data_oriented_charged_overhead_is_slower():
    loop = example2_loop(n=5, m=4)
    plain = run_nested(loop, make_scheme("reference-based"), processors=4)
    charged = run_nested(loop, make_scheme("reference-based"),
                         processors=4, charge_boundary_overhead=True)
    assert charged.boundary_overhead_per_iteration > 0
    assert charged.result.makespan > plain.result.makespan


def test_coalescing_reports_included():
    report = run_nested(example2_loop(n=5, m=4),
                        make_scheme("process-oriented"), processors=4)
    deps = {r.dependence.split(" ")[0] for r in report.coalescing}
    assert "S1->S2" in deps and "S2->S3" in deps
    total_extra = sum(r.extra_instances for r in report.coalescing)
    assert total_extra > 0  # coalescing does add spurious waits


def test_pc_beats_overheaded_data_oriented():
    """The example's conclusion: implicit coalescing (tiny extra waits)
    beats explicit boundary testing (O(r*d) work every iteration)."""
    loop = example2_loop(n=6, m=5)
    pc = run_nested(loop, make_scheme("process-oriented"), processors=4)
    ref = run_nested(loop, make_scheme("reference-based"), processors=4,
                     charge_boundary_overhead=True)
    assert pc.result.makespan < ref.result.makespan
