"""Example 1: relaxation strategies all compute the same grid; the
pipeline beats the wavefront; grouping trades sync for delay."""

from __future__ import annotations

import pytest

from repro.apps.relaxation import (PipelinedRelaxation, SerialRelaxation,
                                   StatementPipelinedRelaxation,
                                   WavefrontRelaxation, check_solution,
                                   column_groups, reference_solution,
                                   run_relaxation, serial_cycles)
from repro.barriers import PCButterflyBarrier
from repro.sim import ValidationError

N = 14
P = 4


def test_column_groups():
    assert column_groups(6, 1) == [(2, 2), (3, 3), (4, 4), (5, 5), (6, 6)]
    assert column_groups(6, 2) == [(2, 3), (4, 5), (6, 6)]
    assert column_groups(6, 10) == [(2, 6)]
    with pytest.raises(ValueError):
        column_groups(6, 0)


def test_serial_strategy_correct():
    result = run_relaxation(SerialRelaxation(N), processors=1)
    check_solution(N, result)
    assert result.sync_vars == 0


def test_wavefront_correct_and_counts_steps():
    workload = WavefrontRelaxation(N, PCButterflyBarrier(P))
    run_relaxation(workload, processors=P, schedule="block")
    assert workload.parallel_steps == 2 * N - 3


@pytest.mark.parametrize("group", [1, 2, 4, 13])
def test_pipeline_correct_for_any_grouping(group):
    result = run_relaxation(PipelinedRelaxation(N, group=group),
                            processors=P)
    assert result.makespan > 0


def test_pipeline_beats_wavefront():
    """Same parallel steps, better efficiency (Fig. 5.1(c) vs (d))."""
    wavefront = run_relaxation(WavefrontRelaxation(N, PCButterflyBarrier(P)),
                               processors=P, schedule="block")
    pipeline = run_relaxation(PipelinedRelaxation(N, group=1), processors=P)
    assert pipeline.makespan < wavefront.makespan
    assert pipeline.utilization > wavefront.utilization
    # identical parallel-step counts
    assert (PipelinedRelaxation(N, group=1).parallel_steps
            == WavefrontRelaxation(N, PCButterflyBarrier(P)).parallel_steps)


def test_grouping_reduces_sync_at_small_delay():
    """Fig. 5.1(c): grouping G cuts synchronization ~G-fold while adding
    bounded pipeline-fill delay."""
    g1 = run_relaxation(PipelinedRelaxation(N, group=1), processors=P)
    g4 = run_relaxation(PipelinedRelaxation(N, group=4), processors=P)
    assert g4.sync_transactions < g1.sync_transactions / 2
    assert g4.makespan < 1.6 * g1.makespan


def test_statement_counters_degrade_when_limited():
    """Example 1's point: with S << N-1 statement counters the pipeline
    coarsens and performs worse than the PC scheme."""
    pc = run_relaxation(PipelinedRelaxation(N, group=1), processors=P)
    limited_workload = StatementPipelinedRelaxation(N, n_counters=2)
    limited = run_relaxation(limited_workload, processors=P)
    assert limited.makespan > pc.makespan
    assert limited_workload.sync_points_per_row == 2


def test_statement_counters_full_set_recovers():
    """With S = N-1 counters the statement scheme can pipeline fully."""
    full = StatementPipelinedRelaxation(N, n_counters=N - 1)
    assert full.group == 1
    result = run_relaxation(full, processors=P)
    assert result.sync_vars == N - 1


def test_pc_scheme_needs_constant_vars_statement_needs_n():
    pipeline = PipelinedRelaxation(N, group=1, n_counters=8)
    statement = StatementPipelinedRelaxation(N, n_counters=N - 1)
    assert pipeline.sync_vars == 8                    # independent of N
    assert statement.sync_vars == N - 1               # grows with N
    assert pipeline.sync_points_per_row == N - 1      # yet full sync


def test_reference_solution_matches_serial_run():
    result = run_relaxation(SerialRelaxation(8), processors=1,
                            validate=False)
    expected = reference_solution(8)
    for addr, value in expected.items():
        assert result.final_memory[addr] == value


def test_check_solution_catches_corruption():
    result = run_relaxation(SerialRelaxation(8), processors=1)
    addr = next(iter(reference_solution(8)))
    result.final_memory[addr] = -1
    with pytest.raises(ValidationError):
        check_solution(8, result)


def test_serial_cycles_formula():
    assert serial_cycles(5, 10) == 16 * 10
