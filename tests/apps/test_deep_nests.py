"""Depth-3 nests: coalescing and all schemes at depth > 2."""

from __future__ import annotations

import pytest

from repro.apps.kernels import late_source_loop, triple_nested_loop
from repro.compiler import doacross_delay
from repro.depend import DependenceGraph, classify
from repro.depend.graph import linear_distance
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig


def test_triple_nest_distances():
    loop = triple_nested_loop(n=4, m=3, k=3)
    graph = DependenceGraph(loop)
    vectors = {(d.src, d.dst): d.distance for d in graph.dependences
               if d.loop_carried}
    assert vectors[("S1", "S1")] == (0, 0, 1)
    assert vectors[("S1", "S2")] == (0, 1, 0)
    assert vectors[("S2", "S2")] == (1, 0, 0)


def test_triple_nest_linearization():
    loop = triple_nested_loop(n=4, m=3, k=3)
    assert linear_distance(loop, (0, 0, 1)) == 1
    assert linear_distance(loop, (0, 1, 0)) == 3
    assert linear_distance(loop, (1, 0, 0)) == 9
    arcs = {(a.src, a.dst, a.distance)
            for a in DependenceGraph(loop).sync_arcs()}
    assert arcs == {("S1", "S1", 1), ("S1", "S2", 3), ("S2", "S2", 9)}


def test_triple_nest_classified_doacross():
    assert classify(triple_nested_loop()).label == "doacross"


@pytest.mark.parametrize("name", scheme_names())
def test_all_schemes_on_triple_nest(name):
    loop = triple_nested_loop(n=3, m=3, k=3)
    machine = Machine(MachineConfig(processors=4))
    result = make_scheme(name).run(loop, machine=machine)  # validates
    assert result.makespan > 0


def test_triple_nest_lpids_dense():
    loop = triple_nested_loop(n=3, m=2, k=2)
    lpids = [loop.lpid(index) for index in loop.iteration_space()]
    assert lpids == list(range(1, 13))


def test_late_source_loop_has_positive_delay():
    loop = late_source_loop(n=20, body_cost=40)
    report = doacross_delay(loop)
    assert report.delay == 42  # S3 ends at 42, S1 starts at 0, d=1
    assert "S3->S1" in report.critical_arc
    assert report.parallelism_bound == 1.0


@pytest.mark.parametrize("name", scheme_names())
def test_all_schemes_on_late_source_loop(name):
    """The racy layout is exactly where synchronization earns its keep:
    every scheme must still validate."""
    loop = late_source_loop(n=24)
    machine = Machine(MachineConfig(processors=8))
    result = make_scheme(name).run(loop, machine=machine)
    assert result.makespan > 0
