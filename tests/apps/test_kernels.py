"""Paper kernels: shapes, classifications, dependence structure."""

from __future__ import annotations

from repro.apps.kernels import (doall_loop, example2_loop, example3_loop,
                                fig21_loop, fig21_loop_with_delay,
                                recurrence_loop, relaxation_loop)
from repro.depend import DOACROSS, DOALL, DependenceGraph, classify


def test_fig21_is_doacross():
    assert classify(fig21_loop(20)).label == DOACROSS


def test_fig21_delay_injection():
    loop = fig21_loop_with_delay(n=20, cost=10, slow_iteration=5,
                                 slow_cost=500)
    s1 = loop.statement("S1")
    assert s1.cost_at((5,)) == 500
    assert s1.cost_at((6,)) == 10
    # same dependence structure as the plain loop
    plain = {str(d) for d in DependenceGraph(fig21_loop(20)).dependences}
    slow = {str(d) for d in DependenceGraph(loop).dependences}
    assert plain == slow


def test_example2_structure():
    loop = example2_loop(n=4, m=3)
    assert loop.depth == 2
    assert loop.n_iterations == 12
    assert classify(loop).label == DOACROSS
    arcs = {(a.src, a.dst, a.distance)
            for a in DependenceGraph(loop).sync_arcs()}
    assert arcs == {("S1", "S2", 1), ("S2", "S3", 4)}  # M+1 = 4


def test_example3_guards_partition_iterations():
    loop = example3_loop(n=12)
    sb = loop.statement("Sb")
    sc = loop.statement("Sc")
    for i in range(1, 13):
        assert sb.executes_at((i,)) != sc.executes_at((i,))


def test_example3_long_branch_cost():
    loop = example3_loop(n=12, cost=10, long_branch_cost=300)
    sc = loop.statement("Sc")
    taken = next(i for i in range(1, 13) if sc.executes_at((i,)))
    assert sc.cost_at((taken,)) == 300


def test_example3_custom_branch_function():
    loop = example3_loop(n=10, branch=lambda i: "C")
    assert not loop.statement("Sb").executes_at((1,))
    assert loop.statement("Sc").executes_at((1,))


def test_relaxation_loop_dependences():
    loop = relaxation_loop(n=6)
    arcs = {(a.src, a.dst) for a in DependenceGraph(loop).sync_arcs()}
    assert arcs == {("S", "S")}
    distances = {d.distance for d in DependenceGraph(loop).dependences
                 if d.loop_carried}
    assert distances == {(1, 0), (0, 1)}


def test_recurrence_and_doall():
    assert classify(recurrence_loop(10)).label == DOACROSS
    assert classify(doall_loop(10)).label == DOALL
