"""Example 5: FFT with pairwise synchronization vs. global barriers."""

from __future__ import annotations

import pytest

from repro.apps.fft import (BarrierFFT, PairwiseFFT, check_solution,
                            reference_solution, run_fft, stages_for)
from repro.barriers import CounterBarrier, PCButterflyBarrier
from repro.sim import ValidationError


def balanced(pid, stage):
    return 60


def imbalanced(pid, stage):
    return 30 + 90 * ((pid * 7 + stage * 3) % 4 == 0)


def test_stages_for():
    assert stages_for(8) == 3
    with pytest.raises(ValueError):
        stages_for(6)


@pytest.mark.parametrize("processors", [2, 4, 8, 16])
def test_pairwise_correct(processors):
    run_fft(PairwiseFFT(processors, balanced))


@pytest.mark.parametrize("processors", [4, 8])
def test_barrier_variant_correct(processors):
    run_fft(BarrierFFT(processors, balanced,
                       CounterBarrier(processors)))
    run_fft(BarrierFFT(processors, balanced,
                       PCButterflyBarrier(processors)))


def test_pairwise_beats_global_barrier_under_imbalance():
    """"there is no need for a global barrier ... it only waits for
    another processor with which it exchanges data"."""
    pairwise = run_fft(PairwiseFFT(16, imbalanced))
    barrier = run_fft(BarrierFFT(16, imbalanced, CounterBarrier(16)))
    pc_barrier = run_fft(BarrierFFT(16, imbalanced, PCButterflyBarrier(16)))
    assert pairwise.makespan < barrier.makespan
    assert pairwise.makespan <= pc_barrier.makespan
    assert pairwise.total_spin < barrier.total_spin


def test_pairwise_uses_p_counters():
    workload = PairwiseFFT(8, balanced)
    assert workload.sync_vars == 8


def test_reference_solution_chains_stages():
    values = reference_solution(4)
    assert len(values) == 4 * 2  # P chunks x log P stages
    # stage-2 value depends on stage-1 values
    from repro.apps.fft import chunk_address, chunk_value
    expected = chunk_value(0, 2, values[chunk_address(0, 1)],
                           values[chunk_address(2, 1)])
    assert values[chunk_address(0, 2)] == expected


def test_check_solution_catches_corruption():
    result = run_fft(PairwiseFFT(4, balanced))
    addr = next(iter(reference_solution(4)))
    result.final_memory[addr] = -1
    with pytest.raises(ValidationError):
        check_solution(4, result)
