"""Example 3: eager vs lazy publication of skipped source steps."""

from __future__ import annotations

import pytest

from repro.apps.branchy import run_branchy
from repro.apps.kernels import example3_loop


def test_policies_validated():
    for policy in ("eager", "lazy"):
        report = run_branchy(policy, n=24)
        assert report.makespan > 0
        assert report.policy == policy


def test_eager_spins_less():
    """Publishing skipped steps before the long branch ("inform the
    sinks to proceed as soon as possible") cuts sink busy-waiting."""
    eager = run_branchy("eager", n=48, long_branch_cost=400)
    lazy = run_branchy("lazy", n=48, long_branch_cost=400)
    assert eager.total_spin < lazy.total_spin


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        run_branchy("sometimes")


def test_basic_style_also_supported():
    report = run_branchy("eager", n=24, style="basic")
    assert report.makespan > 0


def test_custom_loop_accepted():
    loop = example3_loop(n=18, branch=lambda i: "C" if i % 2 else "B")
    report = run_branchy("eager", loop=loop)
    assert report.makespan > 0
