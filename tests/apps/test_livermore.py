"""The Livermore-style suite: classifications and end-to-end runs."""

from __future__ import annotations

import pytest

from repro.apps.livermore import (SUITE, adi_sweep, first_difference,
                                  hydro_fragment, prefix_partials,
                                  state_fragment, tridiagonal)
from repro.compiler import compile_loop, doacross_delay
from repro.depend import DOACROSS, DOALL, classify
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig


def test_classifications_are_the_textbook_ones():
    assert classify(hydro_fragment()).label == DOALL
    assert classify(state_fragment()).label == DOALL
    assert classify(first_difference()).label == DOALL
    assert classify(tridiagonal()).label == DOACROSS
    assert classify(adi_sweep()).label == DOACROSS
    assert classify(prefix_partials()).label == DOACROSS


def test_tridiagonal_is_a_serial_chain():
    report = doacross_delay(tridiagonal())
    assert report.parallelism_bound == 1.0


def test_prefix_partials_pipelines_stride_wide():
    report = doacross_delay(prefix_partials(stride=4))
    # chains at distance 4: up to 4 iterations in flight
    assert report.parallelism_bound == pytest.approx(4.0)


def test_adi_sweep_parallel_across_columns():
    loop = adi_sweep(n=6, m=8)
    report = doacross_delay(loop)
    # carried only along rows (linear distance M): M columns in flight
    assert report.parallelism_bound >= 8


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_compiles_and_validates(name):
    loop = SUITE[name]() if name != "adi" else adi_sweep(n=5, m=4)
    if name in ("hydro", "state", "first-diff", "tridiag", "prefix"):
        loop = SUITE[name](n=24)
    decision = compile_loop(loop, processors=4)
    assert decision.instrumented is not None
    machine = Machine(MachineConfig(processors=4))
    result = machine.run(decision.instrumented)
    decision.instrumented.validate(result)


@pytest.mark.parametrize("name", ["hydro", "tridiag", "prefix"])
def test_suite_under_every_scheme(name):
    loop = SUITE[name](n=16)
    machine = Machine(MachineConfig(processors=4))
    from repro.schemes import scheme_names
    for scheme_name in scheme_names():
        result = make_scheme(scheme_name).run(loop, machine=machine)
        assert result.makespan > 0


def test_doalls_scale_and_chains_do_not():
    machine1 = Machine(MachineConfig(processors=1))
    machine8 = Machine(MachineConfig(processors=8))
    scheme = make_scheme("process-oriented")

    hydro = hydro_fragment(n=64)
    chain = tridiagonal(n=64)
    hydro_speedup = (scheme.run(hydro, machine=machine1).makespan
                     / scheme.run(hydro, machine=machine8).makespan)
    chain_speedup = (scheme.run(chain, machine=machine1).makespan
                     / scheme.run(chain, machine=machine8).makespan)
    assert hydro_speedup > 3.0
    assert chain_speedup < 1.6
