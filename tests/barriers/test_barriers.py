"""Barriers: separation, reuse, variable/operation counts, hot spots."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.barriers import (BarrierViolation, BrooksButterflyBarrier,
                            CounterBarrier, PCButterflyBarrier,
                            PhasedWorkload, check_barrier_separation,
                            stages_for)
from repro.sim import Machine, MachineConfig
from repro.sim.metrics import RunResult

ALL_BARRIERS = [CounterBarrier, BrooksButterflyBarrier, PCButterflyBarrier]


def run_phased(barrier, n_phases=6, work=lambda pid, phase: 40):
    workload = PhasedWorkload(barrier, n_phases, work)
    machine = Machine(MachineConfig(processors=barrier.n_processors,
                                    schedule="block"))
    return machine.run(workload)


@pytest.mark.parametrize("barrier_cls", ALL_BARRIERS)
@pytest.mark.parametrize("processors", [2, 4, 8, 16])
def test_separation_balanced(barrier_cls, processors):
    barrier = barrier_cls(processors)
    result = run_phased(barrier)
    check_barrier_separation(result, processors, 6)


@pytest.mark.parametrize("barrier_cls", ALL_BARRIERS)
def test_separation_imbalanced(barrier_cls):
    """Separation must hold when arrival times are scattered."""
    barrier = barrier_cls(8)
    result = run_phased(barrier, n_phases=5,
                        work=lambda pid, phase: 10 + 60 * ((pid + phase)
                                                           % 4))
    check_barrier_separation(result, 8, 5)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       barrier_index=st.integers(min_value=0, max_value=2),
       log_p=st.integers(min_value=1, max_value=4))
def test_separation_random_imbalance(seed, barrier_index, log_p):
    processors = 1 << log_p
    barrier = ALL_BARRIERS[barrier_index](processors)

    def work(pid, phase):
        return 5 + (seed * 31 + pid * 17 + phase * 7) % 97

    result = run_phased(barrier, n_phases=4, work=work)
    check_barrier_separation(result, processors, 4)


def test_counter_barrier_two_or_four_variables():
    assert CounterBarrier(8, hardware_fetch_add=True).sync_vars == 2
    assert CounterBarrier(8).sync_vars == 4  # + ticket lock words


def test_butterfly_variable_counts():
    """The paper's claim: PC butterfly uses fewer variables than Brooks
    (P vs P*log2 P)."""
    for p in (4, 8, 16, 32):
        brooks = BrooksButterflyBarrier(p)
        pc = PCButterflyBarrier(p)
        assert pc.sync_vars == p
        assert brooks.sync_vars == p * stages_for(p)
        assert pc.sync_vars < brooks.sync_vars


def test_butterfly_operation_counts():
    """...and fewer operations (2 vs 4 per stage per processor)."""
    brooks = run_phased(BrooksButterflyBarrier(8), n_phases=4)
    pc = run_phased(PCButterflyBarrier(8), n_phases=4)
    assert pc.total_sync_ops < brooks.total_sync_ops


def test_counter_barrier_hot_spot():
    """The counter barrier's polling converges on single modules; the
    butterflies spread their flags."""
    counter = run_phased(CounterBarrier(16), n_phases=4)
    brooks = run_phased(BrooksButterflyBarrier(16), n_phases=4)
    assert counter.memory_hotspot > brooks.memory_hotspot


def test_pc_butterfly_no_memory_traffic():
    result = run_phased(PCButterflyBarrier(8), n_phases=4)
    assert result.memory_hotspot == 0   # broadcast registers, not memory


def test_butterfly_requires_power_of_two():
    with pytest.raises(ValueError):
        BrooksButterflyBarrier(6)
    with pytest.raises(ValueError):
        PCButterflyBarrier(12)
    with pytest.raises(ValueError):
        CounterBarrier(1)


def test_episode_numbering_per_pid():
    barrier = PCButterflyBarrier(4)
    assert barrier.next_episode(0) == 1
    assert barrier.next_episode(0) == 2
    assert barrier.next_episode(1) == 1


def test_check_barrier_separation_detects_violation():
    result = RunResult(makespan=10, processors=[],
                       memory_transactions=0, memory_hotspot=0,
                       sync_transactions=0, covered_writes=0, sync_vars=0,
                       sync_storage_words=0, init_cycles=0,
                       extra={"events": [
                           (5, "phase_done", {"pid": 0, "phase": 0}),
                           (9, "phase_done", {"pid": 1, "phase": 0}),
                           (7, "barrier_exit", {"pid": 0, "phase": 0}),
                           (10, "barrier_exit", {"pid": 1, "phase": 0}),
                       ]})
    with pytest.raises(BarrierViolation):
        check_barrier_separation(result, 2, 1)


def test_check_barrier_separation_detects_missing_arrivals():
    result = RunResult(makespan=10, processors=[],
                       memory_transactions=0, memory_hotspot=0,
                       sync_transactions=0, covered_writes=0, sync_vars=0,
                       sync_storage_words=0, init_cycles=0,
                       extra={"events": [
                           (5, "phase_done", {"pid": 0, "phase": 0}),
                           (7, "barrier_exit", {"pid": 0, "phase": 0}),
                       ]})
    with pytest.raises(BarrierViolation):
        check_barrier_separation(result, 2, 1)


def test_lock_based_counter_slower_than_hardware_fa():
    locked = run_phased(CounterBarrier(8), n_phases=4)
    hardware = run_phased(CounterBarrier(8, hardware_fetch_add=True),
                          n_phases=4)
    assert locked.makespan > hardware.makespan


def test_butterflies_beat_lock_based_counter():
    """Example 4's headline: butterfly > counter on a machine without
    hardware fetch&add, already at P = 8."""
    counter = run_phased(CounterBarrier(8), n_phases=6)
    brooks = run_phased(BrooksButterflyBarrier(8), n_phases=6)
    pc = run_phased(PCButterflyBarrier(8), n_phases=6)
    assert brooks.makespan < counter.makespan
    assert pc.makespan < counter.makespan
