"""Dissemination and tournament barriers ([11]), any-P support."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.barriers import (DisseminationBarrier, PCDisseminationBarrier,
                            PCButterflyBarrier, PhasedWorkload,
                            TournamentBarrier, check_barrier_separation,
                            rounds_for)
from repro.sim import Machine, MachineConfig

HFM_BARRIERS = [DisseminationBarrier, PCDisseminationBarrier,
                TournamentBarrier]


def run_phased(barrier, n_phases=5, work=lambda pid, phase: 40):
    workload = PhasedWorkload(barrier, n_phases, work)
    machine = Machine(MachineConfig(processors=barrier.n_processors,
                                    schedule="block"))
    return machine.run(workload)


def test_rounds_for():
    assert rounds_for(2) == 1
    assert rounds_for(3) == 2
    assert rounds_for(8) == 3
    assert rounds_for(9) == 4
    with pytest.raises(ValueError):
        rounds_for(1)


@pytest.mark.parametrize("barrier_cls", HFM_BARRIERS)
@pytest.mark.parametrize("processors", [2, 3, 5, 7, 8, 12, 16])
def test_any_processor_count(barrier_cls, processors):
    """Unlike the XOR butterfly, these work for non-powers-of-two --
    the paper's "minor modification [11]"."""
    barrier = barrier_cls(processors)
    result = run_phased(barrier)
    check_barrier_separation(result, processors, 5)


@pytest.mark.parametrize("barrier_cls", HFM_BARRIERS)
def test_imbalanced_arrivals(barrier_cls):
    barrier = barrier_cls(11)
    result = run_phased(barrier, n_phases=4,
                        work=lambda pid, phase: 10 + 70 * ((pid + phase)
                                                           % 3))
    check_barrier_separation(result, 11, 4)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999),
       barrier_index=st.integers(min_value=0, max_value=2),
       processors=st.integers(min_value=2, max_value=13))
def test_separation_random(seed, barrier_index, processors):
    barrier = HFM_BARRIERS[barrier_index](processors)

    def work(pid, phase):
        return 5 + (seed * 13 + pid * 31 + phase * 7) % 83

    result = run_phased(barrier, n_phases=3, work=work)
    check_barrier_separation(result, processors, 3)


def test_variable_counts():
    p = 12
    rounds = rounds_for(p)
    assert DisseminationBarrier(p).sync_vars == p * rounds
    assert PCDisseminationBarrier(p).sync_vars == p
    # tournament: one arrival + one release flag per match, P-1 matches
    tournament = TournamentBarrier(p)
    tournament.build_fabric(__import__(
        "repro.sim.memory", fromlist=["SharedMemory"]).SharedMemory())
    assert tournament.sync_vars == 2 * (p - 1)


def test_pc_dissemination_matches_butterfly_cost_at_power_of_two():
    """At P = 2^k both PC barriers do log2 P set+wait pairs; their
    episode costs should be close."""
    p = 16
    butterfly = run_phased(PCButterflyBarrier(p), n_phases=6)
    dissemination = run_phased(PCDisseminationBarrier(p), n_phases=6)
    assert abs(butterfly.makespan - dissemination.makespan) \
        <= 0.15 * butterfly.makespan
    assert dissemination.sync_vars == butterfly.sync_vars == p


def test_pc_dissemination_no_memory_traffic():
    result = run_phased(PCDisseminationBarrier(8))
    assert result.memory_hotspot == 0


def test_dissemination_flags_spread_over_memory():
    result = run_phased(DisseminationBarrier(8))
    assert result.memory_hotspot > 0   # memory-resident flags
    assert result.sync_transactions > 0


def test_tournament_no_concurrent_writers():
    """Tournament flags are single-writer: losers write arrival flags,
    winners write release flags, never the same variable."""
    barrier = TournamentBarrier(8)
    from repro.sim.memory import SharedMemory
    barrier.build_fabric(SharedMemory())
    arrival_vars = set(barrier._arrival.values())
    release_vars = set(barrier._release.values())
    assert not arrival_vars & release_vars
