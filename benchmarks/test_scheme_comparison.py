"""E12 -- the section 3/6 summary: all four schemes side by side.

The paper's comparative claims, as one table over the running example:

* data-oriented schemes need O(data) synchronization variables and pay
  O(data) initialization; the statement-oriented scheme needs one per
  source statement; the process-oriented scheme needs X, a constant;
* the process-oriented scheme's storage never grows with N while every
  data-oriented scheme's does;
* the broadcast-register schemes spin for free (no memory traffic);
  the data-oriented schemes poll through memory.

The grid is the ``scheme-comparison`` preset of :mod:`repro.lab` (all
four schemes at two problem sizes, so the constant-vs-O(data) claims
are visible as growth, not single points).
"""

from __future__ import annotations

from repro.lab import make_spec
from repro.report import print_table

SIZES = tuple(dict(params)["n"] for _app, params in
              make_spec("scheme-comparison").apps)
P = make_spec("scheme-comparison").processors[0]


def test_scheme_comparison(sweep):
    report = sweep("scheme-comparison")
    rows = report.metrics_by("scheme", "app_params.n")

    for n in SIZES:
        ref = rows[("reference-based", n)]
        inst = rows[("instance-based", n)]
        stmt = rows[("statement-oriented", n)]
        proc = rows[("process-oriented", n)]

        # synchronization-variable ordering: process/statement tiny,
        # data-oriented O(data)
        assert stmt["sync_vars"] == 4
        assert proc["sync_vars"] == 16
        assert ref["sync_vars"] == n + 4
        assert inst["sync_vars"] > ref["sync_vars"]

        # initialization overhead: data-oriented pay per datum (grows
        # with N even parallelized over P init workers); process
        # counters are a constant handful of register writes
        assert ref["init_cycles"] > proc["init_cycles"]
        assert proc["init_cycles"] < 100

        # storage: the proposed scheme's is constant and smallest
        assert proc["sync_storage_words"] <= min(
            ref["sync_storage_words"], inst["sync_storage_words"])

        # waiting style: register schemes beat memory-polled schemes on
        # makespan for this loop
        assert proc["makespan"] < ref["makespan"]
        assert proc["makespan"] < inst["makespan"]

    # the growth claims across sizes: the proposed scheme's footprint is
    # flat, the data-oriented ones grow
    lo, hi = SIZES[0], SIZES[-1]
    assert (rows[("process-oriented", hi)]["sync_storage_words"]
            == rows[("process-oriented", lo)]["sync_storage_words"])
    assert (rows[("reference-based", hi)]["sync_vars"]
            > rows[("reference-based", lo)]["sync_vars"])

    print_table(
        ["scheme", "N", "sync vars", "storage", "init cycles", "sync tx",
         "makespan", "util", "spin frac"],
        [[scheme, n, m["sync_vars"], m["sync_storage_words"],
          m["init_cycles"], m["sync_transactions"], m["makespan"],
          m["utilization"], m["spin_fraction"]]
         for (scheme, n), m in sorted(rows.items())],
        title=f"Section 3/6 summary: all schemes, Fig 2.1 loop, "
              f"N in {SIZES}, P={P}")
