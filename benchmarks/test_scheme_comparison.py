"""E12 -- the section 3/6 summary: all four schemes side by side.

The paper's comparative claims, as one table over the running example:

* data-oriented schemes need O(data) synchronization variables and pay
  O(data) initialization; the statement-oriented scheme needs one per
  source statement; the process-oriented scheme needs X, a constant;
* the process-oriented scheme's storage never grows with N while every
  data-oriented scheme's does;
* the broadcast-register schemes spin for free (no memory traffic);
  the data-oriented schemes poll through memory.
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.report import print_table
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig

N = 120
P = 8


def run_all_schemes():
    machine = Machine(MachineConfig(processors=P))
    loop = fig21_loop(n=N)
    return {name: make_scheme(name).run(loop, machine=machine)
            for name in scheme_names()}


def test_scheme_comparison(once):
    results = once(run_all_schemes)

    ref = results["reference-based"]
    inst = results["instance-based"]
    stmt = results["statement-oriented"]
    proc = results["process-oriented"]

    # synchronization-variable ordering: process/statement tiny,
    # data-oriented O(data)
    assert stmt.sync_vars == 4
    assert proc.sync_vars == 16
    assert ref.sync_vars == N + 4
    assert inst.sync_vars > ref.sync_vars

    # initialization overhead: data-oriented pay per datum (grows with
    # N even parallelized over P init workers); process counters are a
    # constant handful of register writes
    assert ref.init_cycles > proc.init_cycles
    assert proc.init_cycles < 100

    # storage: the proposed scheme's is constant and smallest
    assert proc.sync_storage_words <= min(ref.sync_storage_words,
                                          inst.sync_storage_words)

    # waiting style: register schemes beat memory-polled schemes on
    # makespan for this loop
    assert proc.makespan < ref.makespan
    assert proc.makespan < inst.makespan

    print_table(
        ["scheme", "sync vars", "storage", "init cycles", "sync tx",
         "makespan", "util", "spin frac"],
        [[name, r.sync_vars, r.sync_storage_words, r.init_cycles,
          r.sync_transactions, r.makespan, round(r.utilization, 3),
          round(r.spin_fraction, 3)]
         for name, r in results.items()],
        title=f"Section 3/6 summary: all schemes, Fig 2.1 loop, N={N}, "
              f"P={P}")
