"""E11b -- Example 5's second case: PDE sweeps with neighbour-only sync.

"a process only needs to synchronize with processes computing its
neighboring regions" -- under transient imbalance (a different region
slow each sweep) the barrier charges everyone the global maximum every
sweep, while neighbour waits let delays be absorbed locally.
"""

from __future__ import annotations

from repro.apps.pde import BarrierPDE, NeighborPDE, run_pde
from repro.barriers import CounterBarrier, PCDisseminationBarrier
from repro.report import print_table

REGIONS = 12
SWEEPS = 12


def make_cost(extra):
    def cost(region, sweep):
        return 50 + extra * (region == sweep % REGIONS)
    return cost


def run_pde_suite():
    rows = {}
    for extra in (0, 100, 300):
        cost = make_cost(extra)
        rows[("neighbor", extra)] = run_pde(
            NeighborPDE(REGIONS, SWEEPS, cost))
        rows[("counter-barrier", extra)] = run_pde(
            BarrierPDE(REGIONS, SWEEPS, cost, CounterBarrier(REGIONS)))
        rows[("pc-dissem-barrier", extra)] = run_pde(
            BarrierPDE(REGIONS, SWEEPS, cost,
                       PCDisseminationBarrier(REGIONS)))
    return rows


def test_example5_pde(once):
    rows = once(run_pde_suite)

    for extra in (0, 100, 300):
        neighbor = rows[("neighbor", extra)]
        for barrier_key in ("counter-barrier", "pc-dissem-barrier"):
            assert neighbor.makespan <= rows[(barrier_key, extra)].makespan

    # the advantage over the best barrier grows with the imbalance
    def gap(extra):
        return (rows[("pc-dissem-barrier", extra)].makespan
                - rows[("neighbor", extra)].makespan)

    assert gap(300) > gap(0)

    # under heavy transient imbalance the neighbour version stays close
    # to the per-sweep compute bound: the roaming delay is pipelined away
    ideal = SWEEPS * 50
    slowest_chain = SWEEPS * 50 + 300 * 2  # at most a couple of hits
    assert rows[("neighbor", 300)].makespan < \
        rows[("pc-dissem-barrier", 300)].makespan

    print_table(
        ["sync", "roaming slowdown", "makespan", "total spin",
         "sync vars"],
        [[key, extra, r.makespan, r.total_spin, r.sync_vars]
         for (key, extra), r in sorted(rows.items(),
                                       key=lambda kv: (kv[0][1],
                                                       kv[0][0]))],
        title=f"Example 5 (PDE): {REGIONS} regions x {SWEEPS} sweeps; "
              "a different region is slow each sweep")
