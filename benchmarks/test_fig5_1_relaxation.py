"""E7 -- Fig. 5.1 / Example 1: wavefront vs asynchronous pipelining.

Shape claims:

* the pipeline and the wavefront take the same number of parallel steps,
  but the pipeline's makespan and utilization are better (no barrier
  idling, no short-diagonal starvation);
* grouping G cuts synchronization roughly G-fold at a bounded delay
  cost;
* with S << N-1 statement counters the statement-oriented pipeline
  degrades (Alliant's constant-index registers), while the PC scheme
  keeps full pipelining with a constant X.
"""

from __future__ import annotations

from repro.apps.relaxation import (PipelinedRelaxation, SerialRelaxation,
                                   StatementPipelinedRelaxation,
                                   WavefrontRelaxation, run_relaxation,
                                   serial_cycles)
from repro.barriers import CounterBarrier, PCButterflyBarrier
from repro.report import print_table

N = 28
P = 8


def run_relaxation_suite():
    results = {}
    results["serial"] = run_relaxation(SerialRelaxation(N), processors=1)
    results["wavefront/counter-barrier"] = run_relaxation(
        WavefrontRelaxation(N, CounterBarrier(P)), processors=P,
        schedule="block")
    results["wavefront/pc-butterfly"] = run_relaxation(
        WavefrontRelaxation(N, PCButterflyBarrier(P)), processors=P,
        schedule="block")
    for group in (1, 3, 9):
        results[f"pipeline/G={group}"] = run_relaxation(
            PipelinedRelaxation(N, group=group), processors=P)
    for counters in (2, 8, N - 1):
        results[f"statement/S={counters}"] = run_relaxation(
            StatementPipelinedRelaxation(N, n_counters=counters),
            processors=P)
    return results


def test_fig5_1_wavefront_vs_pipeline(once):
    results = once(run_relaxation_suite)
    serial = results["serial"].makespan

    pipeline = results["pipeline/G=1"]
    for wavefront_key in ("wavefront/counter-barrier",
                          "wavefront/pc-butterfly"):
        wavefront = results[wavefront_key]
        assert pipeline.makespan < wavefront.makespan
        assert pipeline.utilization > wavefront.utilization

    # same parallel-step count by construction
    assert (PipelinedRelaxation(N, group=1).parallel_steps
            == WavefrontRelaxation(N, PCButterflyBarrier(P)).parallel_steps)

    # grouping: ~G-fold fewer sync transactions, bounded extra delay
    g1, g3 = results["pipeline/G=1"], results["pipeline/G=3"]
    assert g3.sync_transactions < g1.sync_transactions / 2
    assert g3.makespan < 1.6 * g1.makespan

    # limited statement counters degrade; the full set recovers
    assert (results["statement/S=2"].makespan
            > results["pipeline/G=1"].makespan)
    assert (results[f"statement/S={N-1}"].makespan
            < results["statement/S=2"].makespan)

    print_table(
        ["strategy", "makespan", "speedup", "util", "sync vars",
         "sync tx"],
        [[key, r.makespan, round(serial / r.makespan, 2),
          round(r.utilization, 3), r.sync_vars, r.sync_transactions]
         for key, r in results.items()],
        title=f"Fig 5.1: {N}x{N} relaxation on {P} processors "
              f"(serial compute = {serial_cycles(N, 10)} cycles)")
