"""E18 -- loop transformations through the generic machinery.

Fig. 5.1(c)'s "loop index transformation" and grouping, as IR-level
compiler transforms rather than hand-built workloads:

* ``wavefront()`` (skew + interchange) turns the relaxation nest into a
  diagonal-major nest whose inner level carries nothing; run through the
  ordinary process-oriented scheme it recovers most of the hand-built
  pipeline's performance;
* ``strip_mine()`` exposes the strip loop for coarser synchronization --
  the analyzer proves the strip-mined refs' multiple constant distances
  and the plan collapses to the original arcs.
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop, relaxation_loop
from repro.depend import DependenceGraph
from repro.depend.transform import inner_loop_parallel, strip_mine, wavefront
from repro.report import print_table
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig

P = 8
GRID = 14


def run_transform_study():
    machine = Machine(MachineConfig(processors=P))
    scheme = ProcessOrientedScheme(processors=P)
    rows = {}

    original = relaxation_loop(n=GRID)
    transformed = wavefront(original)
    rows["relaxation original"] = scheme.run(original, machine=machine)
    rows["relaxation wavefronted"] = scheme.run(transformed,
                                                machine=machine)

    flat = fig21_loop(n=60, cost=4)
    rows["fig2.1 flat"] = scheme.run(flat, machine=machine)
    for width in (3, 6):
        stripped = strip_mine(flat, level=0, width=width)
        rows[f"fig2.1 strip w={width}"] = scheme.run(stripped,
                                                     machine=machine)
    return rows, transformed


def test_transforms(once):
    rows, transformed = once(run_transform_study)

    # the wavefronted nest's inner level is dependence-free
    assert inner_loop_parallel(transformed)
    assert not inner_loop_parallel(relaxation_loop(n=GRID))

    # Direct per-point coalescing of the relaxation is a trap: the
    # (0,1) arc linearizes to distance 1, chaining every consecutive
    # lpid -- a fully serial pipeline drowning in spin.  That is exactly
    # why Example 1 pipelines whole *rows* instead.  Wavefronting fixes
    # it at the IR level: the inner (diagonal) level carries nothing.
    direct = rows["relaxation original"]
    wavefronted = rows["relaxation wavefronted"]
    assert direct.spin_fraction > 0.5          # the serial-chain symptom
    assert wavefronted.makespan < 0.5 * direct.makespan
    assert wavefronted.spin_fraction < 0.3

    # strip-mining: the plan still has the original arcs (multi-distance
    # coalescing) and execution stays correct and comparable
    flat = rows["fig2.1 flat"]
    for width in (3, 6):
        stripped = rows[f"fig2.1 strip w={width}"]
        assert stripped.makespan < 2.0 * flat.makespan

    arcs_flat = {(a.src, a.dst, a.distance) for a in
                 DependenceGraph(fig21_loop(n=60)).pruned_sync_arcs()}
    arcs_strip = {(a.src, a.dst, a.distance) for a in DependenceGraph(
        strip_mine(fig21_loop(n=60), 0, 3)).pruned_sync_arcs()}
    assert arcs_flat == arcs_strip

    print_table(
        ["configuration", "makespan", "sync vars", "sync tx",
         "spin frac"],
        [[key, r.makespan, r.sync_vars, r.sync_transactions,
          round(r.spin_fraction, 3)]
         for key, r in rows.items()],
        title="IR transforms under the process-oriented scheme "
              f"(P={P}): wavefronting and strip-mining")
