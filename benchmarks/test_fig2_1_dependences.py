"""E1 -- Fig. 2.1: dependence analysis of the running example.

Regenerates the dependence graph of Fig. 2.1(b): the arcs, their types
and distances, and the coverage pruning the paper describes (S1->S4 is
covered by S1->S3 + S3->S4).
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.depend import DependenceGraph, classify
from repro.report import print_table


def analyze_fig21(n):
    loop = fig21_loop(n=n)
    graph = DependenceGraph(loop)
    return loop, graph


def test_fig2_1_dependence_graph(once):
    loop, graph = once(analyze_fig21, 1000)

    arcs = {(d.src, d.dst, d.dep_type, d.distance)
            for d in graph.dependences}
    expected = {
        ("S1", "S2", "flow", (2,)),
        ("S1", "S3", "flow", (1,)),
        ("S4", "S5", "flow", (1,)),
        ("S2", "S4", "anti", (1,)),
        ("S3", "S4", "anti", (2,)),
        ("S1", "S4", "output", (3,)),
        ("S1", "S5", "flow", (4,)),   # covered; elided in the figure
    }
    assert arcs == expected

    pruned = {(a.src, a.dst, a.distance)
              for a in graph.pruned_sync_arcs()}
    assert ("S1", "S4", 3) not in pruned   # the paper's covered arc
    assert ("S1", "S5", 4) not in pruned
    assert len(pruned) == 5

    outcome = classify(loop)
    assert outcome.label == "doacross"

    print_table(
        ["dependence", "type", "distance", "enforced"],
        [[f"{d.src}->{d.dst}", d.dep_type, d.distance[0],
          "yes" if (d.src, d.dst, d.distance[0]) in pruned else
          "covered"]
         for d in sorted(graph.dependences,
                         key=lambda d: (d.src, d.dst))],
        title="Fig 2.1(b): dependences of the running example "
              f"(classified {outcome.label})")
