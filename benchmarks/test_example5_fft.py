"""E11 -- Example 5: FFT phases with local communication.

Shape claims:

* pairwise synchronization (wait only for the processor you exchange
  with) beats a global barrier per stage;
* the gap grows with per-stage imbalance -- a barrier waits for the
  globally slowest processor, the pairwise wait only for one partner.
"""

from __future__ import annotations

from repro.apps.fft import BarrierFFT, PairwiseFFT, run_fft
from repro.barriers import CounterBarrier, PCButterflyBarrier
from repro.report import print_table

P = 16


def make_cost(imbalance):
    def cost(pid, stage):
        return 60 + imbalance * ((pid * 7 + stage * 3) % 4 == 0)
    return cost


def run_fft_suite():
    rows = {}
    for imbalance in (0, 120, 360):
        cost = make_cost(imbalance)
        rows[("pairwise", imbalance)] = run_fft(PairwiseFFT(P, cost))
        rows[("counter-barrier", imbalance)] = run_fft(
            BarrierFFT(P, cost, CounterBarrier(P)))
        rows[("pc-butterfly-barrier", imbalance)] = run_fft(
            BarrierFFT(P, cost, PCButterflyBarrier(P)))
    return rows


def test_example5_fft(once):
    rows = once(run_fft_suite)

    for imbalance in (0, 120, 360):
        pairwise = rows[("pairwise", imbalance)]
        for barrier_key in ("counter-barrier", "pc-butterfly-barrier"):
            barrier = rows[(barrier_key, imbalance)]
            assert pairwise.makespan <= barrier.makespan
            assert pairwise.total_spin <= barrier.total_spin

    # advantage grows with imbalance (vs the butterfly barrier, the
    # fairest baseline: same communication pattern, global semantics)
    def gap(imbalance):
        return (rows[("pc-butterfly-barrier", imbalance)].makespan
                - rows[("pairwise", imbalance)].makespan)

    assert gap(360) > gap(0)

    print_table(
        ["sync", "imbalance", "makespan", "total spin", "sync vars"],
        [[key, imbalance, r.makespan, r.total_spin, r.sync_vars]
         for (key, imbalance), r in sorted(rows.items(),
                                           key=lambda kv: (kv[0][1],
                                                           kv[0][0]))],
        title=f"Example 5: {P}-processor FFT, log2(P) stages "
              "(imbalance = extra cycles on 1/4 of stage computations)")
