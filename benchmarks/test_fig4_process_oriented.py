"""E5/E6 -- Figs. 4.1-4.3: the process-oriented scheme itself.

Shape claims:

* synchronization variables = X, constant in N (the headline);
* the X sweep: tiny X throttles the pipeline, X ~ 2P saturates;
* the improved primitives (Fig. 4.3) never broadcast more than the basic
  ones and shed ownership waits when counters arrive late.
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.report import print_table
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig

P = 8


def run_fig4():
    machine = Machine(MachineConfig(processors=P))
    results = {}
    # N sweep at fixed X
    for n in (50, 100, 200):
        results[("N", n)] = ProcessOrientedScheme(n_counters=16).run(
            fig21_loop(n=n), machine=machine)
    # X sweep at fixed N
    for x in (1, 2, 4, 16, 64):
        results[("X", x)] = ProcessOrientedScheme(n_counters=x).run(
            fig21_loop(n=100), machine=machine)
    # primitive styles under scarce counters (ownership arrives late)
    for style in ("basic", "improved"):
        results[("style", style)] = ProcessOrientedScheme(
            n_counters=2, style=style).run(fig21_loop(n=100),
                                           machine=machine)
    return results


def test_fig4_process_counters(once):
    results = once(run_fig4)

    # sync vars constant in N
    assert (results[("N", 50)].sync_vars
            == results[("N", 200)].sync_vars == 16)
    # and initialization does not grow with N either
    assert (results[("N", 200)].init_cycles
            == results[("N", 50)].init_cycles)

    # X sweep: loop time (net of init) weakly improves, then saturates
    def net(x):
        r = results[("X", x)]
        return r.makespan - r.init_cycles

    assert net(16) <= net(1)
    assert abs(net(64) - net(16)) <= 0.05 * net(16) + 10

    # improved <= basic in broadcasts under scarce counters
    basic = results[("style", "basic")]
    improved = results[("style", "improved")]
    assert improved.sync_transactions <= basic.sync_transactions
    assert improved.makespan <= basic.makespan * 1.05

    print_table(
        ["config", "makespan", "net loop", "sync vars", "sync tx",
         "covered", "spin frac"],
        [[f"{kind}={value}", r.makespan, r.makespan - r.init_cycles,
          r.sync_vars, r.sync_transactions, r.covered_writes,
          round(r.spin_fraction, 3)]
         for (kind, value), r in results.items()],
        title="Fig 4: process-oriented scheme (N sweep, X sweep, "
              "basic vs improved primitives)")
