"""E14 -- scheduling-order ablation (the paper's [23, 24]).

The paper assumes dynamic self-scheduling throughout and cites Tang,
Yew & Zhu's finding that the *order* of self-scheduling matters for
DOACROSS loops.  This bench reproduces both halves:

* for a DOALL, chunked/guided grabs cut scheduling traffic at no cost;
* for a DOACROSS, fine-grained order (self/cyclic) is essential --
  handing one processor consecutive iterations serializes the
  dependence pipeline, and static block partitioning is worst.
"""

from __future__ import annotations

from repro.apps.kernels import doall_loop, fig21_loop
from repro.report import print_table
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig, SCHED_COUNTER

P = 8
SCHEDULES = ("self", "chunk", "guided", "cyclic", "block")


def grabs_in(result):
    return len([r for r in result.trace if r.addr == SCHED_COUNTER])


def run_schedules():
    scheme = ProcessOrientedScheme()
    rows = {}
    doall = doall_loop(n=160, cost=8)
    doacross = fig21_loop(n=96)
    for schedule in SCHEDULES:
        machine = Machine(MachineConfig(processors=P, schedule=schedule,
                                        chunk_size=8))
        rows[("doall", schedule)] = scheme.run(doall, machine=machine)
        rows[("doacross", schedule)] = scheme.run(doacross,
                                                  machine=machine)
    return rows


def test_scheduling_order(once):
    rows = once(run_schedules)

    # DOALL: chunking cuts grab traffic without losing time
    assert (grabs_in(rows[("doall", "chunk")])
            < grabs_in(rows[("doall", "self")]) / 4)
    assert (rows[("doall", "chunk")].makespan
            <= rows[("doall", "self")].makespan * 1.1)

    # DOACROSS: fine-grained order wins; consecutive-iteration policies
    # (chunk, block) serialize the pipeline
    fine = min(rows[("doacross", "self")].makespan,
               rows[("doacross", "cyclic")].makespan)
    assert rows[("doacross", "chunk")].makespan > 1.3 * fine
    assert rows[("doacross", "block")].makespan > 1.3 * fine

    print_table(
        ["loop", "schedule", "makespan", "sched grabs", "spin frac"],
        [[loop, schedule, r.makespan, grabs_in(r),
          round(r.spin_fraction, 3)]
         for (loop, schedule), r in sorted(rows.items())],
        title="Scheduling order ([23,24]): DOALL vs DOACROSS under five "
              "policies (chunk size 8)")
