"""E10 -- Fig. 5.4 / Example 4: butterfly barriers.

Shape claims:

* on a machine without hardware fetch&add (the paper's small bus-based
  systems), both butterflies beat the lock-based counter barrier, and
  the gap grows with P (O(P) serialized arrivals vs O(log P) stages);
* the PC butterfly needs fewer synchronization variables (P vs
  P*log2 P) and fewer operations (2 vs 4 per stage) than Brooks';
* the counter barrier concentrates traffic on single memory modules
  (the hot spot); the PC butterfly generates no memory traffic at all.
"""

from __future__ import annotations

from repro.barriers import (BrooksButterflyBarrier, CounterBarrier,
                            PCButterflyBarrier, PhasedWorkload,
                            check_barrier_separation, stages_for)
from repro.report import print_table
from repro.sim import Machine, MachineConfig

PHASES = 8
WORK = 100
SIZES = (4, 8, 16, 32)


def episode_cost(result, n_phases=PHASES, work=WORK):
    return (result.makespan - n_phases * work) / n_phases


def run_barrier_sweep():
    rows = {}
    for p in SIZES:
        for label, barrier in (
                ("counter(lock)", CounterBarrier(p)),
                ("counter(f&a)", CounterBarrier(p,
                                                hardware_fetch_add=True)),
                ("brooks-bfly", BrooksButterflyBarrier(p)),
                ("pc-bfly", PCButterflyBarrier(p))):
            workload = PhasedWorkload(barrier, PHASES,
                                      lambda pid, phase: WORK)
            machine = Machine(MachineConfig(processors=p,
                                            schedule="block"))
            result = machine.run(workload)
            check_barrier_separation(result, p, PHASES)
            rows[(label, p)] = result
    return rows


def test_fig5_4_butterfly_barrier(once):
    rows = once(run_barrier_sweep)

    for p in SIZES:
        # butterflies beat the realistic (lock-based) counter barrier
        assert (episode_cost(rows[("brooks-bfly", p)])
                < episode_cost(rows[("counter(lock)", p)]))
        assert (episode_cost(rows[("pc-bfly", p)])
                < episode_cost(rows[("counter(lock)", p)]))
        # fewer variables and fewer sync operations than Brooks'
        assert (rows[("pc-bfly", p)].sync_vars
                < rows[("brooks-bfly", p)].sync_vars)
        assert (rows[("pc-bfly", p)].total_sync_ops
                < rows[("brooks-bfly", p)].total_sync_ops)
        # hot spot: counter pounds one module, PC butterfly none
        assert (rows[("counter(lock)", p)].memory_hotspot
                > rows[("brooks-bfly", p)].memory_hotspot)
        assert rows[("pc-bfly", p)].memory_hotspot == 0

    # the counter's O(P) arrival serialization vs butterfly's O(log P)
    counter_growth = (episode_cost(rows[("counter(lock)", 32)])
                      / episode_cost(rows[("counter(lock)", 4)]))
    brooks_growth = (episode_cost(rows[("brooks-bfly", 32)])
                     / episode_cost(rows[("brooks-bfly", 4)]))
    assert counter_growth > brooks_growth

    print_table(
        ["barrier", "P", "cycles/episode", "sync vars", "sync ops",
         "hot spot"],
        [[label, p, round(episode_cost(r), 1), r.sync_vars,
          r.total_sync_ops, r.memory_hotspot]
         for (label, p), r in sorted(rows.items(),
                                     key=lambda kv: (kv[0][1], kv[0][0]))],
        title=f"Fig 5.4: barrier episode cost, {PHASES} balanced phases "
              f"of {WORK} cycles")
