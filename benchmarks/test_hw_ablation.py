"""E13 -- section 6 hardware ablations.

* write coverage: queued PC writes folded into one broadcast reduce bus
  transactions without changing results;
* split two-field updates: correct (step-first), one extra broadcast per
  transfer;
* coverage pruning of the dependence graph: fewer waits, same results;
* self-scheduling vs static scheduling under imbalance.
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop, fig21_loop_with_delay
from repro.report import print_table
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig

N = 100
P = 8


def run_ablations():
    machine = Machine(MachineConfig(processors=P))
    loop = fig21_loop(n=N)
    rows = {}
    # a congested bus (tiny X forces mark skips and queued writes; the
    # relaxation-style many-marks pattern benefits most from coverage)
    rows["coverage=on"] = ProcessOrientedScheme(
        coverage=True).run(loop, machine=machine)
    rows["coverage=off"] = ProcessOrientedScheme(
        coverage=False).run(loop, machine=machine)
    rows["fields=atomic"] = ProcessOrientedScheme(
        split_fields=False).run(loop, machine=machine)
    rows["fields=split"] = ProcessOrientedScheme(
        split_fields=True).run(loop, machine=machine)
    rows["prune=exact"] = ProcessOrientedScheme(
        prune="exact").run(loop, machine=machine)
    rows["prune=none"] = ProcessOrientedScheme(
        prune="none").run(loop, machine=machine)

    # a genuinely congested bus (slow broadcasts, cheap statements):
    # queued same-PC writes exist, so coverage actually fires
    cheap = fig21_loop(n=N, cost=1)
    for cov in (True, False):
        rows[f"busy-bus coverage={'on' if cov else 'off'}"] = \
            ProcessOrientedScheme(
                coverage=cov,
                fabric_kwargs={"bus_service": 12}).run(cheap,
                                                       machine=machine)

    imbalanced = fig21_loop_with_delay(n=N, slow_iteration=N // 2,
                                       slow_cost=600)
    for schedule in ("self", "block"):
        machine_s = Machine(MachineConfig(processors=P, schedule=schedule))
        rows[f"schedule={schedule}"] = ProcessOrientedScheme().run(
            imbalanced, machine=machine_s)
    return rows


def test_hw_ablation(once):
    rows = once(run_ablations)

    # coverage never increases transactions, never changes correctness
    assert (rows["coverage=on"].sync_transactions
            <= rows["coverage=off"].sync_transactions)
    assert rows["coverage=off"].covered_writes == 0

    # on a congested bus it saves real broadcasts and real time
    busy_on = rows["busy-bus coverage=on"]
    busy_off = rows["busy-bus coverage=off"]
    assert busy_on.covered_writes > 50
    assert busy_on.sync_transactions < busy_off.sync_transactions
    assert busy_on.makespan < busy_off.makespan

    # split fields: one extra broadcast per release, still correct
    assert (rows["fields=split"].sync_transactions
            >= rows["fields=atomic"].sync_transactions + N)

    # pruning drops the covered S1->S4 and S1->S5 waits: fewer sync ops
    assert (rows["prune=exact"].total_sync_ops
            < rows["prune=none"].total_sync_ops)
    assert rows["prune=exact"].makespan <= rows["prune=none"].makespan * 1.1

    # self-scheduling absorbs the slow iteration better than static
    # block partitioning (the paper assumes dynamic scheduling [23,24])
    assert (rows["schedule=self"].makespan
            <= rows["schedule=block"].makespan)

    print_table(
        ["configuration", "makespan", "sync tx", "covered", "sync ops"],
        [[key, r.makespan, r.sync_transactions, r.covered_writes,
          r.total_sync_ops]
         for key, r in rows.items()],
        title=f"Section 6 ablations: Fig 2.1 loop, N={N}, P={P}")
