"""E4 -- Fig. 3.2: the statement-oriented scheme and horizontal sharing.

Shape claims:

* one counter per source statement (4 for the running example),
  independent of N;
* Advance updates are strictly serial per statement, so one delayed
  iteration stalls *every* later iteration -- the delay penalty grows
  with the injected delay under the statement-oriented scheme much
  faster than under the process-oriented scheme (vertical sharing).
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop, fig21_loop_with_delay
from repro.report import print_table
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig

P = 8
N = 96


def run_delay_sweep():
    machine = Machine(MachineConfig(processors=P))
    rows = {}
    for slow_cost in (10, 400, 1600):
        loop = (fig21_loop(n=N) if slow_cost == 10 else
                fig21_loop_with_delay(n=N, slow_iteration=N // 3,
                                      slow_cost=slow_cost))
        for name in ("statement-oriented", "process-oriented"):
            rows[(name, slow_cost)] = make_scheme(name).run(loop,
                                                            machine=machine)
    return rows


def test_fig3_2_statement_counters(once):
    rows = once(run_delay_sweep)

    # counter count: one per source statement, independent of N
    for slow_cost in (10, 400, 1600):
        assert rows[("statement-oriented", slow_cost)].sync_vars == 4

    # horizontal sharing: the statement scheme suffers more from the
    # injected delay than the process scheme does
    def penalty(name):
        return (rows[(name, 1600)].makespan
                - rows[(name, 10)].makespan)

    assert penalty("statement-oriented") > penalty("process-oriented")
    # and in absolute terms it is slower once the delay is big
    assert (rows[("statement-oriented", 1600)].makespan
            > rows[("process-oriented", 1600)].makespan)

    print_table(
        ["scheme", "slow-S1 cost", "makespan", "spin frac", "sync vars"],
        [[name, cost, r.makespan, round(r.spin_fraction, 3), r.sync_vars]
         for (name, cost), r in sorted(rows.items())],
        title="Fig 3.2: statement counters vs process counters under "
              "one delayed iteration")
