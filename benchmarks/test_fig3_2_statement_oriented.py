"""E4 -- Fig. 3.2: the statement-oriented scheme and horizontal sharing.

Shape claims:

* one counter per source statement (4 for the running example),
  independent of N;
* Advance updates are strictly serial per statement, so one delayed
  iteration stalls *every* later iteration -- the delay penalty grows
  with the injected delay under the statement-oriented scheme much
  faster than under the process-oriented scheme (vertical sharing).

The grid is the ``fig3.2`` preset of :mod:`repro.lab`: a plain Fig 2.1
loop (the baseline) plus the same loop with one slowed iteration at
increasing costs, under both register-fabric schemes.
"""

from __future__ import annotations

from repro.lab import make_spec
from repro.report import print_table

#: injected S1 costs; the plain loop (no slow iteration) reports None
DELAYS = tuple(dict(params).get("slow_cost") for _app, params in
               make_spec("fig3.2").apps)


def test_fig3_2_statement_counters(sweep):
    report = sweep("fig3.2")
    rows = report.metrics_by("scheme", "app_params.slow_cost")

    # counter count: one per source statement, independent of N
    for slow_cost in DELAYS:
        assert rows[("statement-oriented", slow_cost)]["sync_vars"] == 4

    # horizontal sharing: the statement scheme suffers more from the
    # injected delay than the process scheme does
    worst = max(cost for cost in DELAYS if cost is not None)

    def penalty(name):
        return (rows[(name, worst)]["makespan"]
                - rows[(name, None)]["makespan"])

    assert penalty("statement-oriented") > penalty("process-oriented")
    # and in absolute terms it is slower once the delay is big
    assert (rows[("statement-oriented", worst)]["makespan"]
            > rows[("process-oriented", worst)]["makespan"])

    print_table(
        ["scheme", "slow-S1 cost", "makespan", "spin frac", "sync vars"],
        [[scheme, cost if cost is not None else "(none)", m["makespan"],
          m["spin_fraction"], m["sync_vars"]]
         for (scheme, cost), m in sorted(
             rows.items(), key=lambda kv: (kv[0][0], kv[0][1] or 0))],
        title="Fig 3.2: statement counters vs process counters under "
              "one delayed iteration")
