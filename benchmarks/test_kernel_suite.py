"""E19 -- the kernel suite through the compile pipeline.

A realistic mixed workload (Livermore-style shapes) end to end: the
compiler classifies each kernel, analyzes its doacross delay, picks a
scheme, and the simulation is validated.  Shape claims: DOALLs scale
near-linearly, the serial chain does not, strided prefix chains scale to
their stride, and the ADI sweep scales across its parallel dimension.

The grid is the ``kernels`` preset of :mod:`repro.lab` with the
``auto`` scheme: each cell runs the full compile pipeline and the
record carries the compiler's decision (classification, delay, chosen
scheme) alongside the simulated metrics.
"""

from __future__ import annotations

from repro.compiler import compile_loop
from repro.apps.livermore import tridiagonal
from repro.lab import make_spec
from repro.report import print_table

P = make_spec("kernels").processors[0]


def test_kernel_suite(sweep):
    report = sweep("kernels")
    rows = {record["config"]["app"]: record for record in report.records}

    def speedup(name):
        return rows[name]["metrics"]["speedup"]

    # every kernel simulated and validated through the pipeline
    assert all(record["outcome"] == "ok" for record in rows.values())

    # DOALLs scale well on 8 processors
    for name in ("hydro", "state", "first-diff"):
        assert rows[name]["compile"]["classification"] == "doall"
        assert speedup(name) > 3.0, (name, speedup(name))

    # the serial chain does not scale...
    assert rows["tridiag"]["compile"]["classification"] == "doacross"
    assert speedup("tridiag") < 1.2
    # ...and the profitability gate catches it at compile time ("it may
    # not be desirable to run a loop concurrently")
    gated = compile_loop(tridiagonal(n=64, cost=30), processors=P,
                         serialize_unprofitable=True)
    assert gated.chosen_scheme == "serial"
    assert "not worthwhile" in gated.rationale

    # strided prefix: speedup approaches the stride (4 chains)
    assert 1.5 < speedup("prefix") < 4.5

    # ADI: carried along rows only -> near-DOALL behaviour across columns
    assert speedup("adi") > 2.0

    print_table(
        ["kernel", "classification", "delay", "scheme", "speedup",
         "sync vars"],
        [[name, record["compile"]["classification"],
          record["compile"]["delay"], record["compile"]["scheme"],
          round(record["metrics"]["speedup"], 2),
          record["metrics"]["sync_vars"]]
         for name, record in rows.items()],
        title=f"Livermore-style kernel suite through the compile "
              f"pipeline, P={P} (all runs validated)")
