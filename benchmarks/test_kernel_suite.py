"""E19 -- the kernel suite through the compile pipeline.

A realistic mixed workload (Livermore-style shapes) end to end: the
compiler classifies each kernel, analyzes its doacross delay, picks a
scheme, and the simulation is validated.  Shape claims: DOALLs scale
near-linearly, the serial chain does not, strided prefix chains scale to
their stride, and the ADI sweep scales across its parallel dimension.
"""

from __future__ import annotations

from repro.apps.livermore import SUITE, adi_sweep
from repro.compiler import compile_loop
from repro.report import print_table
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig

P = 8


def run_suite():
    rows = {}
    for name, build in SUITE.items():
        # compute-heavy variants so the serial-compute baseline is fair
        loop = (adi_sweep(n=10, m=8, cost=30) if name == "adi"
                else build(n=64, cost=30))
        decision = compile_loop(loop, processors=P)
        machine = Machine(MachineConfig(processors=P))
        result = machine.run(decision.instrumented)
        decision.instrumented.validate(result)
        serial = loop.serial_cycles()
        rows[name] = (decision, result, serial)
    return rows


def test_kernel_suite(once):
    rows = once(run_suite)

    def speedup(name):
        _decision, result, serial = rows[name]
        return serial / result.makespan

    # DOALLs scale well on 8 processors
    for name in ("hydro", "state", "first-diff"):
        assert rows[name][0].classification.label == "doall"
        assert speedup(name) > 3.0, (name, speedup(name))

    # the serial chain does not scale...
    assert rows["tridiag"][0].classification.label == "doacross"
    assert speedup("tridiag") < 1.2
    # ...and the profitability gate catches it at compile time ("it may
    # not be desirable to run a loop concurrently")
    from repro.apps.livermore import tridiagonal
    gated = compile_loop(tridiagonal(n=64, cost=30), processors=P,
                         serialize_unprofitable=True)
    assert gated.chosen_scheme == "serial"
    assert "not worthwhile" in gated.rationale

    # strided prefix: speedup approaches the stride (4 chains)
    assert 1.5 < speedup("prefix") < 4.5

    # ADI: carried along rows only -> near-DOALL behaviour across columns
    assert speedup("adi") > 2.0

    print_table(
        ["kernel", "classification", "delay", "scheme", "speedup",
         "sync vars"],
        [[name, decision.classification.label,
          round(decision.delay.delay, 1), decision.chosen_scheme,
          round(serial / result.makespan, 2), result.sync_vars]
         for name, (decision, result, serial) in rows.items()],
        title=f"Livermore-style kernel suite through the compile "
              f"pipeline, P={P} (all runs validated)")
