"""E-chaos -- graceful degradation under injected hardware faults.

The robustness claim behind the fault layer, as one sweep: for every
synchronization scheme, under every preset fault plan and several seeds,
a run must end in exactly one of

* ``ok`` -- completed and validated against sequential semantics
  (mandatory for the timing-only plans: jitter and stalls are legal
  executions of a correct scheme);
* ``deadlock-diagnosed`` / ``limit-diagnosed`` -- died with a structured
  :class:`HazardReport` naming each blocked task and, when one exists,
  the blocking wait-for cycle;
* ``corruption-detected`` -- the validator caught the damage.

Never a hang, never silent corruption.  The companion zero-overhead
check pins the fault layer's default-off contract: an empty plan must
reproduce the clean run's metrics and trace exactly.
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.faults import FaultPlan
from repro.faults.chaos import (ACCEPTABLE_OUTCOMES, run_chaos_sweep,
                                summarize)
from repro.report import print_table
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig

N = 16
P = 4
SEEDS = range(3)
PLANS = ["jitter", "stalls", "lossy-bus", "flaky-rmw", "crashy"]
TIMING_ONLY = {"jitter", "stalls"}


def run_sweep():
    return run_chaos_sweep(schemes=scheme_names(), plans=PLANS,
                           seeds=SEEDS, n=N, processors=P)


def test_chaos_sweep_degrades_gracefully(once):
    outcomes = once(run_sweep)
    assert len(outcomes) == 4 * len(PLANS) * len(SEEDS)

    bad = [o for o in outcomes if not o.acceptable]
    assert not bad, "degradation contract violated: " + "; ".join(
        f"{o.scheme}/{o.plan}/seed{o.seed}: {o.outcome} ({o.detail})"
        for o in bad)

    # timing-only faults are legal executions: they must all validate
    for o in outcomes:
        if o.plan in TIMING_ONLY:
            assert o.outcome == "ok", (o.plan, o.scheme, o.seed, o.detail)

    # every diagnosed failure names at least one blocked task, and every
    # cycle-carrying diagnosis names tasks that are actually blocked
    for o in outcomes:
        if o.outcome.endswith("-diagnosed"):
            assert o.blocked_tasks, (o.scheme, o.plan, o.seed)
        if o.cycle:
            assert set(o.cycle) <= set(o.blocked_tasks)

    histogram = summarize(outcomes)
    assert set(histogram) <= set(ACCEPTABLE_OUTCOMES)
    print_table(
        ["scheme", "plan", "seed", "outcome", "fault events", "detail"],
        [[o.scheme, o.plan, o.seed, o.outcome, o.fault_events,
          (" -> ".join(o.cycle) if o.cycle else o.detail)[:44]]
         for o in outcomes],
        title=f"Chaos sweep: 4 schemes x {len(PLANS)} plans x "
              f"{len(SEEDS)} seeds, Fig 2.1 loop, N={N}, P={P} -- "
              + ", ".join(f"{k}={v}" for k, v in sorted(histogram.items())))


def run_identity_check():
    rows = []
    for name in scheme_names():
        loop = fig21_loop(n=24, cost=8)
        scheme = make_scheme(name)
        clean = Machine(MachineConfig(processors=P)).run(
            scheme.instrument(loop))
        empty = Machine(MachineConfig(processors=P,
                                      fault_plan=FaultPlan())).run(
            scheme.instrument(loop))
        rows.append((name, clean, empty))
    return rows


def test_empty_plan_is_zero_overhead(once):
    """The fault layer must be invisible when unused: an all-zero plan
    reproduces the clean run's metrics and trace byte-for-byte."""
    for name, clean, empty in once(run_identity_check):
        assert clean.makespan == empty.makespan, name
        assert clean.summary() == empty.summary(), name
        assert [(r.commit, r.kind, r.addr, r.value) for r in clean.trace] \
            == [(r.commit, r.kind, r.addr, r.value) for r in empty.trace], name
        assert "faults" not in empty.extra, name
        assert empty.fault_events == 0
