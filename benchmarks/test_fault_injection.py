"""E-chaos -- graceful degradation under injected hardware faults.

The robustness claim behind the fault layer, as one sweep: for every
synchronization scheme, under every preset fault plan and several seeds,
a run must end in exactly one of

* ``ok`` -- completed and validated against sequential semantics
  (mandatory for the timing-only plans: jitter and stalls are legal
  executions of a correct scheme);
* ``deadlock-diagnosed`` / ``limit-diagnosed`` -- died with a structured
  :class:`HazardReport` naming each blocked task and, when one exists,
  the blocking wait-for cycle;
* ``corruption-detected`` -- the validator caught the damage.

Never a hang, never silent corruption.  The companion zero-overhead
check pins the fault layer's default-off contract: an empty plan must
reproduce the clean run's metrics and trace exactly.

The recovery-contract sweep raises the bar for *recoverable* plans:
with the recovery layer on (broadcast retransmission, task
reincarnation, degraded-mode fallback), every lossy-bus / flaky-rmw /
crash-task run must end ``ok`` -- completed and validated -- and the
zero-overhead pin extends to recovery: configuring a policy on a
clean run changes nothing, because the layer is only constructed when
a fault injector exists.
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.faults import FaultPlan
from repro.faults.chaos import (ACCEPTABLE_OUTCOMES, run_chaos_sweep,
                                summarize)
from repro.recovery import RecoveryPolicy
from repro.report import print_table
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig

N = 16
P = 4
SEEDS = range(3)
PLANS = ["jitter", "stalls", "lossy-bus", "flaky-rmw", "crashy"]
TIMING_ONLY = {"jitter", "stalls"}
#: plans the recovery layer commits to fully recovering ("crashy" is
#: excluded: random crashes can kill every processor and every rescue,
#: which is a diagnosed death, not a recoverable hazard)
RECOVERABLE = ["lossy-bus", "flaky-rmw", "crash-task"]
RECOVERY_SEEDS = range(5)


def run_sweep():
    return run_chaos_sweep(schemes=scheme_names(), plans=PLANS,
                           seeds=SEEDS, n=N, processors=P)


def run_recovery_sweep():
    return run_chaos_sweep(schemes=scheme_names(), plans=RECOVERABLE,
                           seeds=RECOVERY_SEEDS, n=N, processors=P,
                           recover=True)


def test_chaos_sweep_degrades_gracefully(once):
    outcomes = once(run_sweep)
    assert len(outcomes) == 4 * len(PLANS) * len(SEEDS)

    bad = [o for o in outcomes if not o.acceptable]
    assert not bad, "degradation contract violated: " + "; ".join(
        f"{o.scheme}/{o.plan}/seed{o.seed}: {o.outcome} ({o.detail})"
        for o in bad)

    # timing-only faults are legal executions: they must all validate
    for o in outcomes:
        if o.plan in TIMING_ONLY:
            assert o.outcome == "ok", (o.plan, o.scheme, o.seed, o.detail)

    # every diagnosed failure names at least one blocked task, and every
    # cycle-carrying diagnosis names tasks that are actually blocked
    for o in outcomes:
        if o.outcome.endswith("-diagnosed"):
            assert o.blocked_tasks, (o.scheme, o.plan, o.seed)
        if o.cycle:
            assert set(o.cycle) <= set(o.blocked_tasks)

    histogram = summarize(outcomes)
    assert set(histogram) <= set(ACCEPTABLE_OUTCOMES)
    print_table(
        ["scheme", "plan", "seed", "outcome", "fault events", "detail"],
        [[o.scheme, o.plan, o.seed, o.outcome, o.fault_events,
          (" -> ".join(o.cycle) if o.cycle else o.detail)[:44]]
         for o in outcomes],
        title=f"Chaos sweep: 4 schemes x {len(PLANS)} plans x "
              f"{len(SEEDS)} seeds, Fig 2.1 loop, N={N}, P={P} -- "
              + ", ".join(f"{k}={v}" for k, v in sorted(histogram.items())))


def test_recovery_contract_completes_every_recoverable_run(once):
    """Recovery on + recoverable plan => every run completes validated,
    and every plan shows aggregate recovery activity (memory-fabric
    schemes see no broadcasts, so the bound is per plan, not per run)."""
    outcomes = once(run_recovery_sweep)
    assert len(outcomes) == 4 * len(RECOVERABLE) * len(RECOVERY_SEEDS)

    bad = [o for o in outcomes if o.outcome != "ok"]
    assert not bad, "recovery contract violated: " + "; ".join(
        f"{o.scheme}/{o.plan}/seed{o.seed}: {o.outcome} ({o.detail})"
        for o in bad)

    per_plan = {plan: 0 for plan in RECOVERABLE}
    totals: dict = {}
    for o in outcomes:
        per_plan[o.plan] += o.recovery_events
        for key, count in o.recovery.items():
            totals[key] = totals.get(key, 0) + count
    for plan, events in per_plan.items():
        assert events > 0, f"plan {plan} exercised no recovery at all"
    # each mechanism fired somewhere in the sweep
    assert totals.get("retransmissions", 0) > 0
    assert totals.get("reincarnations", 0) > 0
    assert totals.get("rmw_retries", 0) > 0

    print_table(
        ["scheme", "plan", "seed", "outcome", "recovery events"],
        [[o.scheme, o.plan, o.seed, o.outcome, o.recovery_events]
         for o in outcomes],
        title=f"Recovery contract: 4 schemes x {len(RECOVERABLE)} "
              f"recoverable plans x {len(RECOVERY_SEEDS)} seeds, all "
              "validated -- "
              + ", ".join(f"{k}={v}" for k, v in sorted(totals.items())
                          if v))


def test_sustained_loss_flips_to_degraded_fallback():
    """A very lossy bus must push a broadcast-fabric scheme into
    shared-memory polling of the home copy (and back out), and the run
    must still validate."""
    from repro.faults.chaos import run_chaos_case

    outcome = run_chaos_case(
        "statement-oriented",
        FaultPlan(name="very-lossy", seed=0, broadcast_loss=0.5),
        n=N, processors=P, recover=True)
    assert outcome.outcome == "ok", outcome.detail
    assert outcome.recovery["fallback_epochs"] >= 1
    assert outcome.recovery["fallback_polls"] > 0


def run_identity_check():
    rows = []
    for name in scheme_names():
        loop = fig21_loop(n=24, cost=8)
        scheme = make_scheme(name)
        clean = Machine(MachineConfig(processors=P)).run(
            scheme.instrument(loop))
        empty = Machine(MachineConfig(processors=P,
                                      fault_plan=FaultPlan())).run(
            scheme.instrument(loop))
        recovery = Machine(MachineConfig(processors=P,
                                         fault_plan=FaultPlan(),
                                         recovery=RecoveryPolicy())).run(
            scheme.instrument(loop))
        rows.append((name, clean, empty, recovery))
    return rows


def test_empty_plan_is_zero_overhead(once):
    """The fault layer must be invisible when unused: an all-zero plan
    reproduces the clean run's metrics and trace byte-for-byte -- with
    or without a recovery policy configured on top of it."""
    for name, clean, empty, recovery in once(run_identity_check):
        for other in (empty, recovery):
            assert clean.makespan == other.makespan, name
            assert clean.summary() == other.summary(), name
            assert [(r.commit, r.kind, r.addr, r.value)
                    for r in clean.trace] \
                == [(r.commit, r.kind, r.addr, r.value)
                    for r in other.trace], name
            assert "faults" not in other.extra, name
            assert other.fault_events == 0
        assert "recovery" not in recovery.extra, name


def test_step_dispatch_is_bound_once():
    """Mechanism behind the zero-overhead pin: the per-step fault probes
    live in a separate ``_step_fault`` method, selected once at engine
    construction.  Without an injector the hot loop steps through
    ``_step_clean``, which carries no ``injector is None`` branch."""
    from repro.faults import FaultInjector
    from repro.sim import (BroadcastSyncFabric, Engine, MemoryConfig,
                           SharedMemory)

    clean = Engine(SharedMemory(MemoryConfig()), BroadcastSyncFabric())
    assert clean._step.__func__ is Engine._step_clean

    faulty = Engine(SharedMemory(MemoryConfig()), BroadcastSyncFabric(),
                    injector=FaultInjector(FaultPlan(seed=1,
                                                     stall_prob=0.5)))
    assert faulty._step.__func__ is Engine._step_fault
