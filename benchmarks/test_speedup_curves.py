"""E17 -- speedup curves: schemes and strategies across machine sizes.

The cross-cutting figure the paper implies but never draws: speedup
versus processor count for

* the four schemes on the Fig 2.1 DOACROSS (the ``speedup`` preset
  grid of :mod:`repro.lab` -- scheme x P, speedup vs serial compute),
  and
* wavefront vs pipeline on the relaxation (not a single DOACROSS loop,
  so it stays a hand-rolled workload sweep).

Shape claims: the register-fabric schemes dominate at the paper's
stated scale (small machines, P <= 8); at P = 16 the *data-oriented*
schemes catch up and pass the statement scheme -- reproducing the
paper's own scoping ("schemes such as HEP's full/empty bits, or Cedar's
key/data pair ... are suitable for large scale multiprocessor systems.
... we propose a scheme which ... is more suitable for small scale
multiprocessor systems").  On the relaxation, the pipeline's speedup
grows monotonically with P while the wavefront's degrades past P = 8;
at small P the paper's grouping fix recovers the per-point sync
overhead.
"""

from __future__ import annotations

from repro.apps.relaxation import (PipelinedRelaxation, SerialRelaxation,
                                   WavefrontRelaxation, run_relaxation)
from repro.barriers import PCDisseminationBarrier
from repro.lab import make_spec
from repro.report import print_table
from repro.schemes import scheme_names

SIZES = make_spec("speedup").processors
GRID = 24


def run_relaxation_curves():
    relax_rows = {}
    serial_relax = run_relaxation(SerialRelaxation(GRID), processors=1,
                                  validate=False).makespan
    for p in (2, 4, 8, 16):
        wavefront = run_relaxation(
            WavefrontRelaxation(GRID, PCDisseminationBarrier(p)),
            processors=p, schedule="block", validate=False)
        pipeline = run_relaxation(PipelinedRelaxation(GRID, group=1),
                                  processors=p, validate=False)
        grouped = run_relaxation(PipelinedRelaxation(GRID, group=6),
                                 processors=p, validate=False)
        relax_rows[("wavefront", p)] = serial_relax / wavefront.makespan
        relax_rows[("pipeline G=1", p)] = serial_relax / pipeline.makespan
        relax_rows[("pipeline G=6", p)] = serial_relax / grouped.makespan
    return relax_rows


def test_speedup_curves(sweep):
    report = sweep("speedup")
    scheme_rows = {key: m["speedup"] for key, m in
                   report.metrics_by("scheme", "processors").items()}
    # the pytest-benchmark timer is single-use and spent on the sweep;
    # the relaxation comparison runs untimed
    relax_rows = run_relaxation_curves()

    # the paper's scale (small machines): register schemes dominate
    for p in (2, 4, 8):
        assert (scheme_rows[("process-oriented", p)]
                > scheme_rows[("reference-based", p)])
        assert (scheme_rows[("statement-oriented", p)]
                > scheme_rows[("reference-based", p)])
    # ...and the proposed scheme beats the statement scheme throughout
    for p in (2, 4, 8, 16):
        assert (scheme_rows[("process-oriented", p)]
                >= scheme_rows[("statement-oriented", p)])

    # the paper's scoping: by P = 16 the data-oriented schemes catch the
    # statement scheme (whose Advance chains saturate) -- "suitable for
    # large scale multiprocessor systems"
    assert (scheme_rows[("instance-based", 16)]
            > scheme_rows[("statement-oriented", 16)])

    # speedup is monotone until saturation for the proposed scheme
    curve = [scheme_rows[("process-oriented", p)] for p in SIZES]
    assert curve[1] > curve[0]
    assert curve[2] > curve[1]

    # pipeline scaling: the pipeline's speedup grows monotonically with
    # P, while the wavefront's *degrades* past P = 8 (each of the 2N-3
    # barriers costs more as P grows, and short diagonals starve the
    # extra processors)
    pipe_curve = [relax_rows[("pipeline G=1", p)] for p in (2, 4, 8, 16)]
    assert pipe_curve == sorted(pipe_curve)
    assert (relax_rows[("wavefront", 16)] < relax_rows[("wavefront", 8)])
    # where parallelism matters the pipeline wins outright...
    for p in (8, 16):
        assert (relax_rows[("pipeline G=1", p)]
                > relax_rows[("wavefront", p)])
    # ...and at small P, where per-point sync overhead dominates, the
    # paper's grouping fix (Fig 5.1(c)) closes the gap
    assert (relax_rows[("pipeline G=6", 2)]
            > relax_rows[("pipeline G=1", 2)])

    print_table(
        ["scheme \\ P"] + [str(p) for p in SIZES],
        [[name] + [round(scheme_rows[(name, p)], 2) for p in SIZES]
         for name in scheme_names()],
        title="speedup on the Fig 2.1 DOACROSS (N=80) vs serial compute")
    print_table(
        ["strategy \\ P", "2", "4", "8", "16"],
        [[label] + [round(relax_rows[(label, p)], 2)
                    for p in (2, 4, 8, 16)]
         for label in ("wavefront", "pipeline G=1", "pipeline G=6")],
        title=f"speedup on the {GRID}x{GRID} relaxation vs 1-processor run")
