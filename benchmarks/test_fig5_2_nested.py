"""E8 -- Fig. 5.2 / Example 2: multiply-nested DOACROSS via coalescing.

Shape claims:

* the process-oriented scheme handles the nest through lpid arithmetic
  with a constant number of counters and no boundary tests;
* its price -- extra dependences at inner-loop boundaries -- is a small
  fraction of all enforced instances;
* a data-oriented scheme paying the O(r*d) per-iteration boundary tests
  is strictly slower.
"""

from __future__ import annotations

from repro.apps.kernels import example2_loop
from repro.apps.nested import run_nested
from repro.report import print_table
from repro.schemes import make_scheme

N, M = 12, 8
P = 8


def run_nested_suite():
    loop = example2_loop(n=N, m=M)
    reports = {}
    reports["process-oriented"] = run_nested(
        loop, make_scheme("process-oriented", processors=P), processors=P)
    reports["reference-based"] = run_nested(
        loop, make_scheme("reference-based"), processors=P)
    reports["reference-based+boundary"] = run_nested(
        loop, make_scheme("reference-based"), processors=P,
        charge_boundary_overhead=True)
    reports["statement-oriented"] = run_nested(
        loop, make_scheme("statement-oriented"), processors=P)
    return reports


def test_fig5_2_nested_doacross(once):
    reports = once(run_nested_suite)

    pc = reports["process-oriented"]
    ref_boundary = reports["reference-based+boundary"]

    # PC scheme: constant counters, no boundary overhead
    assert pc.boundary_overhead_per_iteration == 0
    assert pc.result.sync_vars == 16

    # the charged data-oriented run pays O(r*d) per iteration and loses
    assert ref_boundary.boundary_overhead_per_iteration > 0
    assert pc.result.makespan < ref_boundary.result.makespan

    # extra dependences from coalescing exist but are a small minority
    total_true = sum(r.true_instances for r in pc.coalescing)
    total_extra = sum(r.extra_instances for r in pc.coalescing)
    assert total_extra > 0
    assert total_extra < 0.25 * total_true

    print_table(
        ["scheme", "makespan", "sync vars", "boundary ovh/iter"],
        [[key, r.result.makespan, r.result.sync_vars,
          r.boundary_overhead_per_iteration]
         for key, r in reports.items()],
        title=f"Fig 5.2: {N}x{M} nested DOACROSS on {P} processors")
    print_table(
        ["dependence", "vector", "linear", "true waits", "extra waits"],
        [[r.dependence.split(" ")[0], r.vector_distance,
          r.linear_distance, r.true_instances, r.extra_instances]
         for r in pc.coalescing],
        title="coalescing: extra dependences introduced by lpid "
              "linearization")
