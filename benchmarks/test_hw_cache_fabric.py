"""E16 -- section 6's two PC storage options, head to head.

"The PC's could be incorporated in a hardware-maintained coherent cache
system, even though they may be purged out of a cache.  To reduce the
access time of a PC and the impact of busy-waiting traffic, we can use a
dedicated synchronization bus and some synchronization registers..."

The bench quantifies why the paper prefers the bus:

* both options make quiet spinning free (cache hits / local images);
* but every counter *change* costs the cache one miss per watcher,
  versus one broadcast total on the bus;
* a small cache (counters "purged out") degrades further.
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.report import print_table
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig

N = 100
P = 8


def run_fabrics():
    machine = Machine(MachineConfig(processors=P))
    loop = fig21_loop(n=N)
    rows = {}
    rows["broadcast bus"] = ProcessOrientedScheme(
        fabric="broadcast").run(loop, machine=machine)
    rows["coherent cache"] = ProcessOrientedScheme(
        fabric="cached").run(loop, machine=machine)
    rows["coherent cache (4 lines)"] = ProcessOrientedScheme(
        fabric="cached", fabric_kwargs={"capacity": 4}).run(
            loop, machine=machine)
    return rows


def test_pc_storage_options(once):
    rows = once(run_fabrics)

    bus = rows["broadcast bus"]
    cache = rows["coherent cache"]
    tiny = rows["coherent cache (4 lines)"]

    # the cache pays a miss per watcher per change: more transactions
    assert cache.sync_transactions > bus.sync_transactions
    # purging (tiny capacity) only adds misses
    assert tiny.sync_transactions >= cache.sync_transactions
    # the bus wins on makespan
    assert bus.makespan <= cache.makespan
    # both spin cheaply: busy-wait fraction stays small in either model
    assert bus.spin_fraction < 0.2 and cache.spin_fraction < 0.2

    print_table(
        ["PC storage", "makespan", "sync tx", "hot spot", "spin frac"],
        [[key, r.makespan, r.sync_transactions, r.memory_hotspot,
          round(r.spin_fraction, 3)]
         for key, r in rows.items()],
        title=f"Section 6: PC storage options, Fig 2.1 loop, N={N}, "
              f"P={P}")
