"""E15 -- the compile pipeline: analysis-driven scheme selection.

Checks that the static analysis makes the right calls end to end:

* the delay model's predicted makespan is a valid lower bound, and
  tight (within 4x) for compute-dominated loops;
* the scheme the pipeline chooses for "time" is also the (or within 5%
  of the) simulated-fastest candidate;
* a fully serial recurrence is flagged as not worth a DOACROSS.
"""

from __future__ import annotations

from repro.apps.kernels import (doall_loop, example2_loop, fig21_loop,
                                recurrence_loop)
from repro.compiler import compile_loop, doacross_delay, worth_doacross
from repro.report import print_table
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig

P = 8


def run_compiler_study():
    machine = Machine(MachineConfig(processors=P))
    loops = {
        "fig2.1": fig21_loop(n=80),
        "example2": example2_loop(n=10, m=6),
        "doall": doall_loop(n=80),
    }
    study = {}
    for label, loop in loops.items():
        decision = compile_loop(loop, processors=P, objective="time")
        simulated = {}
        for name in decision.estimates:
            result = make_scheme(name).run(loop, machine=machine,
                                           validate=False)
            simulated[name] = result.makespan
        chosen_run = machine.run(decision.instrumented)
        decision.instrumented.validate(chosen_run)
        study[label] = (loop, decision, simulated, chosen_run)
    return study


def test_compiler_pipeline(once):
    study = once(run_compiler_study)

    rows = []
    for label, (loop, decision, simulated, chosen_run) in study.items():
        fastest = min(simulated.values())
        chosen_time = simulated[decision.chosen_scheme]
        # the chosen scheme is simulated-fastest, or within 5%
        assert chosen_time <= 1.05 * fastest, (label, simulated)

        predicted = decision.delay.predicted_makespan(loop.n_iterations, P)
        measured = chosen_run.makespan - chosen_run.init_cycles
        assert measured >= predicted * 0.95, (label, measured, predicted)
        assert measured <= 4 * predicted, (label, measured, predicted)

        rows.append([label, decision.chosen_scheme, round(predicted),
                     measured, round(measured / predicted, 2)])

    # the serial recurrence: analysis says "don't bother"
    recurrence = recurrence_loop(n=60)
    assert not worth_doacross(recurrence, processors=P)
    report = doacross_delay(recurrence)
    assert report.parallelism_bound == 1.0

    print_table(
        ["loop", "chosen scheme", "predicted cycles", "measured (net)",
         "ratio"],
        rows,
        title="Compile pipeline: analytic prediction vs simulation, "
              f"P={P} (recurrence flagged serial: parallelism bound 1.0)")
