"""E2/E3 -- Fig. 3.1: the two data-oriented schemes on the running example.

Shape claims measured here:

* reference-based needs one key per array element, so synchronization
  variables and initialization overhead grow linearly with N;
* instance-based needs even more storage (an instance per write, a copy
  per reader) but removes all anti/output waiting;
* both pay their busy-waiting through the memory system (polled waits
  are charged transactions).
"""

from __future__ import annotations

from repro.apps.kernels import fig21_loop
from repro.report import print_table
from repro.schemes import make_scheme
from repro.sim import Machine, MachineConfig

SIZES = (50, 100, 200)
P = 8


def run_data_oriented():
    machine = Machine(MachineConfig(processors=P))
    rows = {}
    for n in SIZES:
        loop = fig21_loop(n=n)
        for name in ("reference-based", "instance-based"):
            rows[(name, n)] = make_scheme(name).run(loop, machine=machine)
    return rows


def test_fig3_1_data_oriented_costs(once):
    rows = once(run_data_oriented)

    # keys grow ~linearly with N (one per touched element: N+4)
    for n in SIZES:
        assert rows[("reference-based", n)].sync_vars == n + 4

    # instance-based storage is strictly larger (copies per reader)
    for n in SIZES:
        assert (rows[("instance-based", n)].sync_vars
                > rows[("reference-based", n)].sync_vars)

    # reference-based key initialization grows with N (a key per datum);
    # instance-based init covers only pre-loop values (boundary elements
    # here) but its *storage* grows with N
    ref_inits = [rows[("reference-based", n)].init_cycles for n in SIZES]
    assert ref_inits[0] < ref_inits[1] < ref_inits[2]
    inst_storage = [rows[("instance-based", n)].sync_storage_words
                    for n in SIZES]
    assert inst_storage[0] < inst_storage[1] < inst_storage[2]

    # busy-waiting hits the memory system
    for n in SIZES:
        assert rows[("reference-based", n)].sync_transactions > 0

    print_table(
        ["scheme", "N", "sync vars", "init cycles", "sync tx",
         "makespan", "util"],
        [[name, n, r.sync_vars, r.init_cycles, r.sync_transactions,
          r.makespan, round(r.utilization, 3)]
         for (name, n), r in sorted(rows.items())],
        title="Fig 3.1: data-oriented schemes on the Fig 2.1 loop")
