"""E2/E3 -- Fig. 3.1: the two data-oriented schemes on the running example.

Shape claims measured here:

* reference-based needs one key per array element, so synchronization
  variables and initialization overhead grow linearly with N;
* instance-based needs even more storage (an instance per write, a copy
  per reader) but removes all anti/output waiting;
* both pay their busy-waiting through the memory system (polled waits
  are charged transactions).

The grid itself is the ``fig3.1`` preset of :mod:`repro.lab`: this
bench just runs the sweep (cached, optionally parallel) and asserts on
the returned records.
"""

from __future__ import annotations

from repro.lab import make_spec
from repro.report import print_table

#: the swept problem sizes, read back from the preset grid itself
SIZES = tuple(dict(params)["n"] for _app, params in
              make_spec("fig3.1").apps)


def test_fig3_1_data_oriented_costs(sweep):
    report = sweep("fig3.1")
    rows = report.metrics_by("scheme", "app_params.n")

    # keys grow ~linearly with N (one per touched element: N+4)
    for n in SIZES:
        assert rows[("reference-based", n)]["sync_vars"] == n + 4

    # instance-based storage is strictly larger (copies per reader)
    for n in SIZES:
        assert (rows[("instance-based", n)]["sync_vars"]
                > rows[("reference-based", n)]["sync_vars"])

    # reference-based key initialization grows with N (a key per datum);
    # instance-based init covers only pre-loop values (boundary elements
    # here) but its *storage* grows with N
    ref_inits = [rows[("reference-based", n)]["init_cycles"]
                 for n in SIZES]
    assert ref_inits == sorted(ref_inits) and len(set(ref_inits)) == \
        len(ref_inits)
    inst_storage = [rows[("instance-based", n)]["sync_storage_words"]
                    for n in SIZES]
    assert inst_storage == sorted(inst_storage) and \
        len(set(inst_storage)) == len(inst_storage)

    # busy-waiting hits the memory system
    for n in SIZES:
        assert rows[("reference-based", n)]["sync_transactions"] > 0

    print_table(
        ["scheme", "N", "sync vars", "init cycles", "sync tx",
         "makespan", "util"],
        [[scheme, n, m["sync_vars"], m["init_cycles"],
          m["sync_transactions"], m["makespan"], m["utilization"]]
         for (scheme, n), m in sorted(rows.items())],
        title="Fig 3.1: data-oriented schemes on the Fig 2.1 loop")
