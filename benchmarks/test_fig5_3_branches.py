"""E9 -- Fig. 5.3 / Example 3: dependence sources in branches.

Shape claims:

* both publication policies are correct (sinks always proceed: the
  transfer signs off every skipped source);
* the eager policy ("inform the sinks to proceed as soon as possible")
  cuts sink spin time, and the gap grows with the length of the branch
  that delays the lazy sign-off.
"""

from __future__ import annotations

from repro.apps.branchy import run_branchy
from repro.report import print_table

N = 72
P = 8


def run_branch_suite():
    reports = {}
    for long_cost in (100, 400, 1600):
        for policy in ("eager", "lazy"):
            reports[(policy, long_cost)] = run_branchy(
                policy, n=N, long_branch_cost=long_cost, processors=P)
    return reports


def test_fig5_3_branch_sources(once):
    reports = once(run_branch_suite)

    for long_cost in (100, 400, 1600):
        eager = reports[("eager", long_cost)]
        lazy = reports[("lazy", long_cost)]
        assert eager.total_spin <= lazy.total_spin
        assert eager.makespan <= lazy.makespan * 1.02

    # the eager advantage grows with the branch length
    def spin_saving(cost):
        return (reports[("lazy", cost)].total_spin
                - reports[("eager", cost)].total_spin)

    assert spin_saving(1600) > spin_saving(100)

    print_table(
        ["policy", "long-branch cost", "makespan", "total spin"],
        [[policy, cost, r.makespan, r.total_spin]
         for (policy, cost), r in sorted(reports.items())],
        title=f"Fig 5.3: sources in branches, N={N}, P={P} "
              "(eager = publish skipped steps immediately)")
