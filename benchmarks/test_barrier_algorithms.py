"""E10b -- the [11] barrier algorithms and the non-power-of-two case.

Extends the Fig. 5.4 comparison with the two Hensgen/Finkel/Manber
algorithms the paper cites and the "minor modification" that handles
P not a power of two (dissemination pairing):

* the PC dissemination barrier keeps the PC butterfly's costs (P
  variables, 2 ops per round) while supporting any P;
* all log-round barriers beat the lock-based counter barrier;
* the tournament barrier needs 2(P-1) variables and, like the
  butterfly, no atomic operation.
"""

from __future__ import annotations

from repro.barriers import (BrooksButterflyBarrier, CounterBarrier,
                            DisseminationBarrier, PCButterflyBarrier,
                            PCDisseminationBarrier, PhasedWorkload,
                            TournamentBarrier, check_barrier_separation)
from repro.report import print_table
from repro.sim import Machine, MachineConfig

PHASES = 8
WORK = 100
SIZES = (5, 8, 12, 16)  # deliberately includes non-powers-of-two


def episode_cost(result):
    return (result.makespan - PHASES * WORK) / PHASES


def run_algorithms():
    rows = {}
    for p in SIZES:
        candidates = [("counter(lock)", CounterBarrier(p)),
                      ("dissemination", DisseminationBarrier(p)),
                      ("pc-dissemination", PCDisseminationBarrier(p)),
                      ("tournament", TournamentBarrier(p))]
        if p & (p - 1) == 0:  # power of two: XOR butterflies apply
            candidates.append(("brooks-bfly", BrooksButterflyBarrier(p)))
            candidates.append(("pc-bfly", PCButterflyBarrier(p)))
        for label, barrier in candidates:
            workload = PhasedWorkload(barrier, PHASES,
                                      lambda pid, phase: WORK)
            machine = Machine(MachineConfig(processors=p,
                                            schedule="block"))
            result = machine.run(workload)
            check_barrier_separation(result, p, PHASES)
            rows[(label, p)] = result
    return rows


def test_barrier_algorithms(once):
    rows = once(run_algorithms)

    for p in SIZES:
        # every log-round algorithm beats the lock-based counter
        counter = episode_cost(rows[("counter(lock)", p)])
        for label in ("dissemination", "pc-dissemination", "tournament"):
            assert episode_cost(rows[(label, p)]) < counter, (label, p)
        # the PC dissemination barrier has the fewest variables
        assert (rows[("pc-dissemination", p)].sync_vars
                <= min(rows[("dissemination", p)].sync_vars,
                       rows[("tournament", p)].sync_vars))
        # and no memory traffic at all
        assert rows[("pc-dissemination", p)].memory_hotspot == 0

    # at a power of two, PC dissemination ~ PC butterfly (same cost
    # structure, different pairing)
    bfly = episode_cost(rows[("pc-bfly", 16)])
    dissem = episode_cost(rows[("pc-dissemination", 16)])
    assert abs(bfly - dissem) <= 0.25 * bfly + 2

    print_table(
        ["barrier", "P", "cycles/episode", "sync vars", "sync ops",
         "hot spot"],
        [[label, p, round(episode_cost(r), 1), r.sync_vars,
          r.total_sync_ops, r.memory_hotspot]
         for (label, p), r in sorted(rows.items(),
                                     key=lambda kv: (kv[0][1], kv[0][0]))],
        title="Fig 5.4 extension: [11] algorithms, including "
              "non-power-of-two P (5, 12)")
