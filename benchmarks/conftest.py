"""Benchmark harness configuration.

Every bench regenerates one figure/example of the paper: it simulates the
workload(s), checks the paper's *shape* claim as an assertion, prints a
paper-style table (run with ``-s`` to see them), and reports the
simulation wall time through pytest-benchmark.

Simulations are deterministic, so a single round is meaningful; the
``once`` helper standardizes that.

Grid-shaped benches run through the :mod:`repro.lab` sweep engine via
the ``sweep`` fixture: the grid is a named preset spec, results come
back as versioned records (merged into the repository's
``BENCH_sweeps.json``), warm re-runs are served from the
content-addressed cache in ``.repro-cache/``, and
``REPRO_SWEEP_PROCS=8`` fans cold cells across a worker pool without
changing a byte of the output.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.lab import SweepOptions, make_spec, run_sweep

ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_STORE = ROOT / "BENCH_sweeps.json"
CACHE_DIR = ROOT / ".repro-cache"


@pytest.fixture
def once(benchmark):
    """Run a deterministic experiment exactly once under the timer."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1, warmup_rounds=0)
    return runner


@pytest.fixture
def sweep(once):
    """Run a preset lab sweep under the timer; records land in
    ``BENCH_sweeps.json`` and the on-disk cache makes re-runs
    incremental."""
    def runner(preset: str):
        spec = make_spec(preset)
        procs = int(os.environ.get("REPRO_SWEEP_PROCS", "1"))
        return once(lambda: run_sweep(spec, options=SweepOptions(procs=procs,
                    cache_dir=CACHE_DIR, json_path=BENCH_STORE)))
    return runner
