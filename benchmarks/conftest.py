"""Benchmark harness configuration.

Every bench regenerates one figure/example of the paper: it simulates the
workload(s), checks the paper's *shape* claim as an assertion, prints a
paper-style table (run with ``-s`` to see them), and reports the
simulation wall time through pytest-benchmark.

Simulations are deterministic, so a single round is meaningful; the
``once`` helper standardizes that.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a deterministic experiment exactly once under the timer."""
    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1, warmup_rounds=0)
    return runner
